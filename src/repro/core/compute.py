"""The Chaos computation engine (Sections 4, 5 and Figure 4).

One computation engine runs per machine.  Each iteration has a scatter
phase and a gather phase (apply is folded into gather), separated by
global barriers.  Within a phase an engine:

1. works on its assigned partitions, one at a time — loading the vertex
   set, then streaming edge (scatter) or update (gather) chunks from the
   storage sub-system with a window of ``φk`` outstanding requests to
   randomly chosen storage engines (Section 6.5);
2. when done, makes one pass over every foreign partition, proposing to
   help its master; accepted proposals are executed exactly like owned
   partitions (Section 5.3).  A single pass suffices: the acceptance
   criterion (Eq. 2) is monotone — once a proposal would be rejected it
   would be rejected at any later time, because the remaining data D
   only shrinks and the worker count H only grows;
3. for gather, stealers ship their partial accumulators to the master,
   which merges them and runs Apply before writing the vertex set back
   (Figure 3 / Figure 4 lines 40-45);
4. optionally checkpoints its partitions' vertex sets before each
   barrier (Section 6.6).

The engine is written against the :class:`repro.core.workload.Workload`
interface, so the identical scheduling logic drives both functional
(real data) and capacity-model (phantom) runs.

Fault tolerance (Section 6.6, driven by :mod:`repro.faults`): under
fault injection the engine runs inside a recovery *epoch*.  Every
message it sends is stamped with the epoch, request-id streams are
epoch-scoped (so a stale reply can never match a live request), a
``fenced`` flag stops callback-driven work after the engine is killed
(interrupting a process does not cancel its already-subscribed CPU
completions), and blocked RPCs — chunk reads and steal proposals — are
re-armed on a timeout and abandoned only once the failure detector has
fenced their target, so a slow-but-alive peer can never cause a false
data loss.  Checkpoints additionally carry per-partition state
snapshots and report durability to a cluster-wide
:class:`repro.faults.registry.CheckpointRegistry`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.config import ClusterConfig
from repro.core.metrics import Breakdown
from repro.core.stealing import estimate_cluster_remaining, should_accept_steal
from repro.core.workload import UpdateBatch, Workload
from repro.net.retry import RetryPolicy, jittered_delay, retry_rng_seed
from repro.net.transport import Network
from repro.obs.host import resolve_host_profiler
from repro.obs.tracer import NULL_TRACK, TID_CPU, TID_ENGINE
from repro.sim.engine import Event, Simulator
from repro.sim.resources import CoreBank
from repro.sim.sync import Barrier, WaitGroup
from repro.store import engine as store_engine
from repro.store.chunk import Chunk, ChunkKind
from repro.store.integrity import seal_chunk, verify_chunk
from repro.store.placement import (
    CentralizedDirectory,
    HashedVertexPlacement,
    RandomPlacement,
)

COMPUTE_SERVICE = "compute"

#: Wire size of a steal proposal / response (control messages).
STEAL_MESSAGE_BYTES = 48


@dataclass
class PartitionPhaseState:
    """Master-side bookkeeping for one owned partition in one phase."""

    partition: int
    kind: ChunkKind
    workers: int = 0
    stealers: List[int] = field(default_factory=list)
    closed: bool = False
    #: (owner machine, accumulator) pairs shipped home by stealers.
    accums: List[Tuple[int, object]] = field(default_factory=list)
    accum_group: Optional[WaitGroup] = None


class _StreamState:
    """Progress of streaming one (partition, kind) on one engine."""

    __slots__ = (
        "partition",
        "kind",
        "in_flight",
        "exhausted",
        "processing",
        "done",
        "chunks_received",
        "records",
        "accum",
    )

    def __init__(self, sim: Simulator, partition: int, kind: ChunkKind, accum):
        self.partition = partition
        self.kind = kind
        self.in_flight = 0
        self.exhausted: Set[int] = set()
        self.processing = WaitGroup(sim, name=f"proc.p{partition}")
        self.done = Event(sim, name=f"stream.p{partition}.{kind.value}")
        self.chunks_received = 0
        self.records = 0
        self.accum = accum


class ComputationEngine:
    """One machine's computation engine."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        machine: int,
        config: ClusterConfig,
        workload: Workload,
        job: "JobCoordinator",
        local_store: "store_engine.StorageEngine",
        barrier: Barrier,
        directory: Optional[CentralizedDirectory] = None,
        input_bytes_share: int = 0,
        tracer=None,
        sanitizer=None,
        host=None,
        epoch: int = 0,
        preprocess: bool = True,
        registry=None,
        liveness=None,
    ):
        self.sim = sim
        self.network = network
        self.machine = machine
        self.config = config
        self.workload = workload
        self.job = job
        self.local_store = local_store
        self.barrier = barrier
        self.directory = directory
        self.input_bytes_share = input_bytes_share
        #: Recovery epoch this engine belongs to (0 in fault-free runs);
        #: stamps every outgoing message and scopes the request ids.
        self.epoch = epoch
        #: Whether to run the pre-processing pass (skipped on epochs
        #: after a rollback: the edge chunks are already placed).
        self.preprocess = preprocess
        #: Cluster checkpoint registry (fault injection only): tracks
        #: which checkpoint generation is durable and owns slot rotation.
        self._registry = registry
        #: Failure detector view (``is_suspected(machine)``); when set,
        #: blocked reads and steal proposals time out against it.
        self._liveness = liveness
        # Happens-before sanitizer (``repro run --sanitize``): records
        # this engine's accesses to cross-machine shared state.
        self._san = (
            sanitizer if sanitizer is not None and sanitizer.enabled else None
        )
        # Host profiler (``run --host-profile``): real wall/CPU time of
        # the synchronous GAS kernels.  Measured sections never span a
        # yield — the simulator interleaves all machines on one thread,
        # so timing across a yield would charge other machines' host
        # time to this engine's phase.
        self._host = resolve_host_profiler(host)
        # Observability: every span this engine opens carries the
        # Breakdown category it is accounted under, so a trace's
        # category totals reconcile with Figure 17 to float precision.
        if tracer is not None and tracer.enabled:
            self.track = tracer.thread(machine, TID_ENGINE, "engine")
        else:
            self.track = NULL_TRACK
        self._trace_on = self.track.enabled

        self.layout = workload.layout
        self.cores = CoreBank(sim, config.cores, name=f"m{machine}.cores")
        if self._trace_on:
            # Chunk-processing CPU occupancy on its own track: the
            # attribution analyzer unions these spans into the machine's
            # CPU-busy timeline.
            self.cores.enable_trace(
                tracer.thread(machine, TID_CPU, "cpu"), label="exec"
            )
        self.metrics = Breakdown()
        self.window = config.effective_request_window()
        # Stable arithmetic seeds: Python string hashing is salted per
        # process, which would break cross-process reproducibility.
        self._rng = random.Random(config.seed * 1_000_003 + machine * 7919 + 1)
        self.placement = RandomPlacement(
            config.machines, seed=config.seed * 1_000_003 + machine * 7919 + 2
        )
        self.vertex_placement = HashedVertexPlacement(config.machines)

        # Partitions this engine masters: round-robin assignment so each
        # of the k×m partitions has a master (Section 5).
        self.my_partitions = [
            p
            for p in range(self.layout.num_partitions)
            if p % config.machines == machine
        ]

        self._mailbox = network.register(machine, COMPUTE_SERVICE)
        self._pending: Dict[int, Callable] = {}
        # Distinct id streams per machine AND per epoch: a reply from a
        # rolled-back epoch can never collide with a live request.
        self._next_request = machine + epoch * config.machines * (1 << 40)
        #: Request ids deliberately abandoned (dead target); replies to
        #: them are dropped instead of tripping the unknown-reply check.
        self._abandoned: set = set()
        #: Set once the fault supervisor kills this engine: stops all
        #: callback-driven work (CPU completions already subscribed
        #: before the kill still fire and must become no-ops).
        self.fenced = False
        self.stale_messages = 0
        self.steal_timeouts = 0
        self.reads_abandoned = 0
        # Causal DAG recorder shared with the transport (null when
        # tracing is off): dispatching a message moves this machine's
        # chain head so replies/sends inherit the right parent.
        self._causal = network.causal
        # Integrity hardening: verify every chunk-carrying reply; on a
        # corrupt frame, re-request with deterministic seeded backoff.
        self._integrity = config.integrity_checks
        self.integrity_retries = 0
        self.write_retries = 0
        self.retry_wait_seconds = 0.0
        lease = config.effective_lease_timeout()
        # Watchdog / steal re-check cadence: starts at the configured
        # timeout and backs off geometrically (capped) so a long outage
        # does not busy-poll the detector.
        self._watch_policy = RetryPolicy(
            base=config.effective_read_timeout(), factor=1.5, cap=4.0 * lease
        )
        # Integrity re-request cadence: a corrupt frame is a transient,
        # so start well under the lease and back off toward it.
        self._integrity_policy = RetryPolicy(
            base=config.heartbeat_interval / 4.0, factor=2.0, cap=lease
        )
        #: Integrity re-request attempts per outstanding request id.
        self._read_attempts: Dict[int, int] = {}
        self._master_state: Dict[int, PartitionPhaseState] = {}
        self._write_group = WaitGroup(sim, name=f"m{machine}.writes")
        # Scatter output buffers, keyed by destination partition.
        self._buffers: Dict[int, List[UpdateBatch]] = {}
        self._buffer_bytes: Dict[int, int] = {}
        self.checkpoints_written = 0
        self.updates_written_records = 0
        self.updates_written_bytes = 0
        self.finished: Optional[Event] = None

        self.dispatch_process = sim.process(
            self._dispatch(), name=f"compute{machine}.dispatch.e{epoch}"
            if epoch else f"compute{machine}.dispatch"
        )

    # ------------------------------------------------------------------
    # Message plumbing
    # ------------------------------------------------------------------

    def fence(self) -> None:
        """Stop all future work on this engine (fault injection).

        Killing the engine's processes is not enough: CPU-completion
        and write-ack callbacks subscribed before the kill still fire.
        The flag turns them into no-ops so a zombie engine cannot flush
        stale updates into the rolled-back epoch.
        """
        self.fenced = True

    def _new_request_id(self) -> int:
        self._next_request += self.config.machines
        return self._next_request

    def _dispatch(self):
        while True:
            message = yield self._mailbox.get()
            if message.epoch != self.epoch:
                # Traffic from another recovery epoch (a straggling
                # reply, or a steal request from a zombie peer).
                self.stale_messages += 1
                continue
            if message.ctx is not None:
                self._causal.on_dispatch(self.machine, message.ctx)
            kind = message.kind
            if kind in ("read_reply", "vread_reply", "write_ack", "directory_reply"):
                request_id = message.payload[0]
                callback = self._pending.pop(request_id, None)
                if callback is None:
                    if request_id in self._abandoned:
                        self._abandoned.discard(request_id)
                        self.stale_messages += 1
                        continue
                    raise RuntimeError(
                        f"engine {self.machine}: unexpected reply "
                        f"{kind} id={request_id}"
                    )
                callback(message)
            elif kind == "steal_request":
                self._handle_steal_request(message)
            elif kind == "steal_reply":
                request_id = message.payload[0]
                callback = self._pending.pop(request_id, None)
                if callback is not None:
                    callback(message)
            elif kind == "accum":
                self._handle_accum(message)
            else:
                raise RuntimeError(
                    f"engine {self.machine}: unknown message kind {kind!r}"
                )

    def _with_location(self, callback: Callable[[int], None]) -> None:
        """Resolve a storage location, via the directory if centralized."""
        if self.directory is None:
            callback(-1)  # caller picks its own location
            return
        request_id = self._new_request_id()

        def on_reply(message):
            _rid, location = message.payload
            callback(location)

        self._pending[request_id] = on_reply
        self.directory.lookup_from(self.machine, COMPUTE_SERVICE, request_id)

    def _send_read(
        self, partition: int, kind: ChunkKind, target: int, callback
    ) -> int:
        request_id = self._new_request_id()
        self._pending[request_id] = callback
        self.network.send(
            src=self.machine,
            dst=target,
            service=store_engine.SERVICE,
            kind="read",
            size=store_engine.CONTROL_BYTES,
            payload=(request_id, self.machine, COMPUTE_SERVICE, partition, kind),
            epoch=self.epoch,
        )
        return request_id

    def _retry_wait(self, start: float, label: str) -> None:
        """Account one completed backoff wait (trace + counter)."""
        elapsed = self.sim.now - start
        self.retry_wait_seconds += elapsed
        if self._trace_on and elapsed > 0:
            self.track.complete(
                label, start, elapsed, cat="retry_wait",
                args={"machine": self.machine},
            )

    def _send_write(
        self,
        chunk: Chunk,
        target: int,
        on_success: Callable,
        attempt: int = 0,
    ) -> None:
        """One write RPC with integrity-nack handling.

        A storage engine that received the chunk damaged in flight nacks
        it (``write_ack`` with a ``"corrupt"`` marker); the sender still
        holds the chunk and resends after seeded backoff — bounded, so a
        persistently-poisoned link fails loudly instead of livelocking.
        """
        request_id = self._new_request_id()
        message_kind = (
            "vwrite" if chunk.kind is ChunkKind.VERTICES else "write"
        )

        def on_ack(message):
            if message.payload[1] == "corrupt":
                if self.fenced:
                    return
                if attempt >= 7:
                    raise RuntimeError(
                        f"engine {self.machine}: write of chunk "
                        f"p{chunk.partition} to {target} rejected "
                        f"{attempt + 1} times (persistent corruption)"
                    )
                self.write_retries += 1
                delay = jittered_delay(
                    self._integrity_policy, attempt,
                    self.config.seed, self.machine, request_id,
                )
                start = self.sim.now

                def resend() -> None:
                    if self.fenced:
                        return
                    self._retry_wait(start, "write.retry_wait")
                    self._send_write(chunk, target, on_success, attempt + 1)

                self.sim.schedule(delay, resend)
                return
            on_success(message)

        self._pending[request_id] = on_ack
        self.network.send(
            src=self.machine,
            dst=target,
            service=store_engine.SERVICE,
            kind=message_kind,
            size=chunk.size,
            payload=(request_id, self.machine, COMPUTE_SERVICE, chunk),
            epoch=self.epoch,
            attempt=attempt,
        )

    def _write_chunk(self, chunk: Chunk, target: int) -> None:
        """Asynchronously write a chunk; tracked by the phase write group."""
        self._write_group.add(1)
        self._send_write(chunk, target, lambda _m: self._write_group.done_one())

    # ------------------------------------------------------------------
    # Work stealing: master side
    # ------------------------------------------------------------------

    def _handle_steal_request(self, message) -> None:
        request_id, proposer, partition, kind = message.payload
        if self._san is not None:
            # The per-partition steal queue is master-local state; every
            # mutation must happen on the master's dispatch process.
            self._san.access(
                ("steal", partition),
                self.machine,
                write=True,
                label="steal.decide",
            )
        state = self._master_state.get(partition)
        if state is None or state.kind is not kind or state.closed:
            accept = False
        else:
            remaining = estimate_cluster_remaining(
                self.local_store.remaining_bytes(partition, kind),
                self.config.machines,
            )
            decision = should_accept_steal(
                vertex_bytes=self.workload.vertex_set_bytes(partition),
                remaining_bytes=remaining,
                workers=state.workers,
                alpha=self.config.steal_alpha,
            )
            accept = decision.accept
        if accept:
            state.workers += 1
            state.stealers.append(proposer)
            if state.kind is ChunkKind.UPDATES and state.accum_group is not None:
                state.accum_group.add(1)
        self.job.note_steal_decision(accept)
        if self._trace_on:
            self.track.instant(
                "steal.accept" if accept else "steal.reject",
                args={"partition": partition, "proposer": proposer},
            )
        self.network.send(
            src=self.machine,
            dst=proposer,
            service=COMPUTE_SERVICE,
            kind="steal_reply",
            size=STEAL_MESSAGE_BYTES,
            payload=(request_id, accept, partition),
            epoch=self.epoch,
            parent=message.ctx,
        )

    def _handle_accum(self, message) -> None:
        partition, accum = message.payload
        if self._san is not None:
            self._san.access(
                ("steal", partition),
                self.machine,
                write=True,
                label="accum.recv",
            )
        state = self._master_state.get(partition)
        if state is None or state.accum_group is None:
            raise RuntimeError(
                f"engine {self.machine}: stray accumulator for partition "
                f"{partition}"
            )
        if accum is not None:
            state.accums.append((message.src, accum))
        state.accum_group.done_one()

    # ------------------------------------------------------------------
    # Streaming a partition
    # ------------------------------------------------------------------

    def _record_cpu_seconds(self, kind: ChunkKind, records: int) -> float:
        if kind is ChunkKind.EDGES:
            return records * self.config.cpu_seconds_per_edge
        return records * self.config.cpu_seconds_per_update

    def _start_streaming(
        self, partition: int, kind: ChunkKind, accum, iteration: int
    ) -> _StreamState:
        state = _StreamState(self.sim, partition, kind, accum)
        self._pump(state, iteration)
        return state

    def _pump(self, state: _StreamState, iteration: int) -> None:
        while state.in_flight < self.window:
            target = self.placement.choose_read(state.exhausted)
            if target is None:
                break
            state.in_flight += 1
            self._issue_read(state, target, iteration)
        self._maybe_finish_stream(state)

    def _issue_read(self, state: _StreamState, target: int, iteration: int) -> None:
        def on_located(_location: int) -> None:
            # The directory round trip (if any) is the cost; the engine
            # still respects its exhaustion bookkeeping for correctness.
            request_id = self._send_read(
                state.partition,
                state.kind,
                target,
                lambda message: self._on_chunk_reply(state, message, iteration),
            )
            if self._liveness is not None:
                self._watch_read(request_id, state, target, iteration)

        self._with_location(on_located)

    def _watch_read(
        self, request_id: int, state: _StreamState, target: int, iteration: int
    ) -> None:
        """Fault-tolerant read RPC: re-arm a timeout until the reply
        lands or the failure detector fences the target.

        A read to a live-but-slow machine is *never* abandoned (the
        storage engine consumed the chunk cursor, so abandoning it would
        silently lose the chunk); a read to a fenced machine is
        abandoned and the target marked exhausted — the cluster-wide
        rollback that follows re-streams everything anyway.  Re-check
        periods follow the seeded backoff policy: the first check at the
        configured read timeout, later ones geometrically longer
        (capped) so a long outage is not busy-polled.
        """
        rng = random.Random(
            retry_rng_seed(self.config.seed, self.machine, request_id)
        )
        attempt = {"n": 0}

        def check() -> None:
            if self.fenced or request_id not in self._pending:
                return
            if (
                self._liveness.is_suspected(target)
                or not self.network.is_reachable(target)
            ):
                del self._pending[request_id]
                self._abandoned.add(request_id)
                self.reads_abandoned += 1
                state.in_flight -= 1
                state.exhausted.add(target)
                self._pump(state, iteration)
            else:
                attempt["n"] += 1
                self.sim.schedule(
                    self._watch_policy.delay(attempt["n"], rng), check
                )

        self.sim.schedule(self._watch_policy.delay(0, rng), check)

    def _retry_read(
        self, request_id: int, target: int, callback: Callable
    ) -> None:
        """Re-request a chunk whose reply arrived corrupted.

        ``fetch_any`` is read-once at the storage engine, so the retry
        goes by the original ``request_id`` against the engine's
        retransmit buffer.  Bounded: persistent corruption on one
        request fails loudly rather than retrying forever.
        """
        attempt = self._read_attempts.get(request_id, 0)
        if attempt >= 8:
            raise RuntimeError(
                f"engine {self.machine}: read {request_id} from {target} "
                f"corrupt after {attempt} retries (persistent corruption)"
            )
        self._read_attempts[request_id] = attempt + 1
        self.integrity_retries += 1
        self._pending[request_id] = callback
        delay = jittered_delay(
            self._integrity_policy, attempt,
            self.config.seed, self.machine, request_id,
        )
        start = self.sim.now

        def resend() -> None:
            if self.fenced or request_id not in self._pending:
                return
            self._retry_wait(start, "read.retry_wait")
            self.network.send(
                src=self.machine,
                dst=target,
                service=store_engine.SERVICE,
                kind="read_retry",
                size=store_engine.CONTROL_BYTES,
                payload=(request_id, self.machine, COMPUTE_SERVICE),
                epoch=self.epoch,
                attempt=attempt + 1,
            )

        self.sim.schedule(delay, resend)

    def _on_chunk_reply(self, state: _StreamState, message, iteration: int) -> None:
        request_id, chunk = message.payload
        if (
            chunk is not None
            and self._integrity
            and not verify_chunk(chunk)
        ):
            # Damaged in flight: leave in_flight as is and re-request.
            self._retry_read(
                request_id,
                message.src,
                lambda m: self._on_chunk_reply(state, m, iteration),
            )
            return
        self._read_attempts.pop(request_id, None)
        state.in_flight -= 1
        if chunk is None:
            state.exhausted.add(message.src)
        else:
            state.chunks_received += 1
            state.records += chunk.records
            state.processing.add(1)
            cpu = self.cores.execute(
                self._record_cpu_seconds(state.kind, chunk.records)
            )
            cpu.subscribe(
                lambda _e: self._process_chunk(state, chunk, iteration)
            )
        self._pump(state, iteration)

    def _process_chunk(self, state: _StreamState, chunk: Chunk, iteration: int) -> None:
        if self.fenced:
            # Zombie callback: the CPU completion was subscribed before
            # this engine was killed by the fault supervisor.
            return
        if state.kind is ChunkKind.EDGES:
            if self._san is not None:
                # Scatter reads the partition's vertex values.
                self._san.access(
                    ("vertex", state.partition),
                    self.machine,
                    write=False,
                    label="scatter.read",
                )
            with self._host.measure(
                self.machine, "scatter", iteration, records=chunk.records
            ):
                batches = self.workload.scatter_chunk(
                    state.partition, chunk, iteration
                )
            for batch in batches:
                self._buffer_updates(batch)
            self.job.note_scatter(chunk.records, batches)
        else:
            if self._san is not None:
                # Gather reads the vertex values and writes this
                # worker's private accumulator.
                self._san.access(
                    ("vertex", state.partition),
                    self.machine,
                    write=False,
                    label="gather.read",
                )
                if state.accum is not None:
                    # Keyed by owning machine, not id(): host pointer
                    # values are ASLR-dependent and would make race
                    # reports nondeterministic across runs.
                    self._san.access(
                        ("accum", state.partition, self.machine),
                        self.machine,
                        write=True,
                        label="gather.accum",
                    )
            with self._host.measure(
                self.machine, "gather", iteration, records=chunk.records
            ):
                self.workload.gather_chunk(state.partition, state.accum, chunk)
        if self._trace_on:
            self.track.instant(
                "chunk.scatter"
                if state.kind is ChunkKind.EDGES
                else "chunk.gather",
                args={"partition": state.partition, "records": chunk.records},
            )
        state.processing.done_one()
        self._maybe_finish_stream(state)

    def _maybe_finish_stream(self, state: _StreamState) -> None:
        if state.done.triggered:
            return
        if (
            state.in_flight == 0
            and len(state.exhausted) >= self.config.machines
            and state.processing.outstanding == 0
        ):
            state.done.trigger()

    # ------------------------------------------------------------------
    # Update buffering (scatter output)
    # ------------------------------------------------------------------

    def _buffer_updates(self, batch: UpdateBatch) -> None:
        self._buffers.setdefault(batch.partition, []).append(batch)
        total = self._buffer_bytes.get(batch.partition, 0) + batch.nbytes
        self._buffer_bytes[batch.partition] = total
        if total >= self.config.chunk_bytes:
            self._flush_buffer(batch.partition)

    def _flush_buffer(self, partition: int) -> None:
        if self.fenced:
            return
        batches = self._buffers.pop(partition, [])
        nbytes = self._buffer_bytes.pop(partition, 0)
        if not batches:
            return
        count = sum(b.count for b in batches)
        with self._host.measure(self.machine, "serialize", records=count):
            if batches[0].payload is not None:
                payload = {
                    "dst": np.concatenate(
                        [b.payload["dst"] for b in batches]
                    ),
                    "value": np.concatenate(
                        [b.payload["value"] for b in batches]
                    ),
                }
            else:
                payload = None
            if self.config.aggregate_updates and payload is not None:
                combined = self.workload.algorithm.combine_updates(
                    payload["dst"], payload["value"]
                )
                if combined is not None:
                    # Combining costs CPU proportional to the records
                    # merged (the trade-off the paper measured,
                    # Section 11.1).
                    self.cores.execute(
                        count * self.config.cpu_seconds_per_update
                    )
                    dst, values = combined
                    payload = {"dst": dst, "value": values}
                    count = len(dst)
                    nbytes = count * self.workload.algorithm.update_bytes
            self.updates_written_records += count
            self.updates_written_bytes += nbytes
            chunk = Chunk(
                partition=partition,
                kind=ChunkKind.UPDATES,
                size=nbytes,
                payload=payload,
                records=count,
            )
            if payload is not None:
                seal_chunk(chunk)
        target = self._resolve_write_target()
        self._write_chunk(chunk, target)

    def _resolve_write_target(self) -> int:
        # With the centralized directory the *location decision* is the
        # directory's; we model its serialization cost on reads (which
        # dominate request counts) and writes use the engine-local RNG —
        # the device-time outcome is identical (uniform random target).
        return self.placement.choose_write()

    def _flush_all_buffers(self) -> None:
        for partition in list(self._buffers.keys()):
            self._flush_buffer(partition)

    # ------------------------------------------------------------------
    # Vertex set I/O
    # ------------------------------------------------------------------

    def _vertex_chunk_sizes(self, partition: int) -> List[int]:
        total = self.workload.vertex_set_bytes(partition)
        if total <= 0:
            return []
        sizes = []
        remaining = total
        while remaining > 0:
            size = min(self.config.chunk_bytes, remaining)
            sizes.append(size)
            remaining -= size
        return sizes

    def _load_vertex_set(self, partition: int) -> Event:
        """Read all vertex chunks of a partition; event fires when done."""
        sizes = self._vertex_chunk_sizes(partition)
        done = Event(self.sim, name=f"vload.p{partition}")
        if not sizes:
            done.trigger()
            return done
        outstanding = {"count": len(sizes)}

        def on_reply(message, index: int, target: int, attempt: int):
            _rid, chunk = message.payload
            if (
                chunk is not None
                and self._integrity
                and not verify_chunk(chunk)
            ):
                # Corrupt in flight; vreads are idempotent (keyed), so
                # simply re-issue after seeded backoff.  Bounded.
                if attempt >= 8:
                    raise RuntimeError(
                        f"engine {self.machine}: vread p{partition}[{index}] "
                        f"corrupt after {attempt} retries"
                    )
                self.integrity_retries += 1
                delay = jittered_delay(
                    self._integrity_policy, attempt,
                    self.config.seed, self.machine, _rid,
                )
                start = self.sim.now

                def reissue() -> None:
                    if self.fenced:
                        return
                    self._retry_wait(start, "vread.retry_wait")
                    issue(index, target, attempt + 1)

                self.sim.schedule(delay, reissue)
                return
            outstanding["count"] -= 1
            if outstanding["count"] == 0:
                done.trigger()

        def issue(index: int, target: int, attempt: int) -> None:
            request_id = self._new_request_id()
            self._pending[request_id] = (
                lambda m: on_reply(m, index, target, attempt)
            )
            self.network.send(
                src=self.machine,
                dst=target,
                service=store_engine.SERVICE,
                kind="vread",
                size=store_engine.CONTROL_BYTES,
                payload=(request_id, self.machine, COMPUTE_SERVICE, partition, index),
                epoch=self.epoch,
                attempt=attempt,
            )

        for index in range(len(sizes)):
            issue(index, self.vertex_placement.machine_for(partition, index), 0)
        return done

    def _store_vertex_set(
        self,
        partition: int,
        checkpoint: bool = False,
        base: Optional[int] = None,
        first_chunk_payload=None,
    ) -> Event:
        """Write all vertex chunks back; event fires when all are acked.

        Checkpoint writes land at a distinct index ``base`` (the slot
        rotation of the two-phase protocol); ``first_chunk_payload``
        rides on the chunk at ``base + 0`` of every replica — the fault
        runtime stores the partition's state snapshot there so recovery
        can read real bytes back through the storage model.
        """
        sizes = self._vertex_chunk_sizes(partition)
        done = Event(self.sim, name=f"vstore.p{partition}")
        if not sizes:
            done.trigger()
            return done
        outstanding = {"count": len(sizes)}

        def on_ack(_message):
            outstanding["count"] -= 1
            if outstanding["count"] == 0:
                done.trigger()

        if base is None:
            base = 1_000_000 if checkpoint else 0
        replicas = self.config.vertex_replicas
        outstanding["count"] *= replicas
        for index, size in enumerate(sizes):
            targets = self.vertex_placement.machines_for(
                partition, index, replicas
            )
            for target in targets:
                chunk = Chunk(
                    partition=partition,
                    kind=ChunkKind.VERTICES,
                    size=size,
                    payload=(
                        first_chunk_payload
                        if (checkpoint and index == 0)
                        else None
                    ),
                    index=base + index,
                )
                if chunk.payload is not None:
                    seal_chunk(chunk)
                self._send_write(chunk, target, on_ack)
        return done

    # ------------------------------------------------------------------
    # Partition work (scatter or gather, master or stealer)
    # ------------------------------------------------------------------

    def _work_on_partition(self, partition: int, kind: ChunkKind, master: bool):
        iteration = self.job.iteration
        track = self.track
        if self._trace_on:
            track.begin(
                f"partition{partition}",
                args={
                    "kind": kind.value,
                    "role": "master" if master else "stealer",
                    "iteration": iteration,
                },
            )
        # 1. Load the vertex set (the steal cost V of Eq. 1).
        t0 = self.sim.now
        track.begin("vertex_load", cat="copy")
        yield self._load_vertex_set(partition)
        self.metrics.add("copy", self.sim.now - t0)
        track.end()

        if master:
            state = self._master_state[partition]
            state.workers += 1

        accum = None
        if kind is ChunkKind.UPDATES:
            accum = self.workload.begin_gather(partition)
            if self._san is not None and accum is not None:
                self._san.access(
                    ("accum", partition, self.machine),
                    self.machine,
                    write=True,
                    label="accum.init",
                )

        # 2. Stream edge/update chunks through the request window.
        t1 = self.sim.now
        category = "gp_master" if master else "gp_stolen"
        track.begin("stream", cat=category)
        stream = self._start_streaming(partition, kind, accum, iteration)
        yield stream.done
        self.metrics.add(category, self.sim.now - t1)
        track.end(
            args={"chunks": stream.chunks_received, "records": stream.records}
            if self._trace_on
            else None
        )

        # 3. Phase-specific completion.
        if kind is ChunkKind.UPDATES:
            if master:
                yield from self._finish_gather_master(partition, accum, iteration)
            else:
                yield from self._ship_accumulator(partition, accum)
        else:
            if master:
                self._master_state[partition].closed = True
        if self._trace_on:
            track.end()

    def _finish_gather_master(self, partition: int, accum, iteration: int):
        state = self._master_state[partition]
        state.closed = True
        track = self.track
        # Wait for every accepted stealer's accumulator (Figure 4 line 42).
        t0 = self.sim.now
        track.begin("merge_wait", cat="merge_wait")
        yield state.accum_group.wait()
        self.metrics.add("merge_wait", self.sim.now - t0)
        self.job.note_steal_wait(self.job.current_stats, self.sim.now - t0)
        track.end()

        vertices = self.layout.vertex_count(partition)
        # Merge stealer accumulators, then Apply (folded into gather).
        t1 = self.sim.now
        track.begin("merge_apply", cat="merge")
        merge_cpu = (
            len(state.accums) * vertices * self.config.cpu_seconds_per_vertex
        )
        apply_cpu = vertices * self.config.cpu_seconds_per_vertex
        if merge_cpu + apply_cpu > 0:
            yield self.cores.execute(merge_cpu + apply_cpu)
        with self._host.measure(self.machine, "apply", iteration):
            for owner, other in state.accums:
                if self._san is not None and other is not None:
                    # Reading a stealer's accumulator: ordered by the
                    # accum message handoff (or it is a race).  The key
                    # names the stealer that owns the accumulator,
                    # matching its accum.init/gather.accum writes.
                    self._san.access(
                        ("accum", partition, owner),
                        self.machine,
                        write=False,
                        label="merge.read",
                    )
                self.workload.merge_accumulators(partition, accum, other)
            if self._san is not None:
                self._san.access(
                    ("vertex", partition),
                    self.machine,
                    write=True,
                    label="apply.write",
                )
            changed = self.workload.apply_partition(
                partition, accum, iteration
            )
        self.job.note_apply(changed)
        self.metrics.add("merge", self.sim.now - t1)
        track.end()

        # Write the vertex set back (only the master writes: Section 6.1).
        t2 = self.sim.now
        track.begin("vertex_store", cat="copy")
        yield self._store_vertex_set(partition)
        self.metrics.add("copy", self.sim.now - t2)
        track.end()

        # Delete the partition's update set everywhere (Figure 4 line 45).
        for target in range(self.config.machines):
            self.network.send(
                src=self.machine,
                dst=target,
                service=store_engine.SERVICE,
                kind="delete",
                size=store_engine.CONTROL_BYTES,
                payload=(partition, ChunkKind.UPDATES),
                epoch=self.epoch,
            )

    def _ship_accumulator(self, partition: int, accum):
        """Stealer side of gather completion: send the accumulator home."""
        master = partition % self.config.machines
        size = self.workload.accum_bytes(partition)
        t0 = self.sim.now
        self.track.begin("ship_accum", cat="copy")
        delivered = self.network.send(
            src=self.machine,
            dst=master,
            service=COMPUTE_SERVICE,
            kind="accum",
            size=size,
            payload=(partition, accum),
            epoch=self.epoch,
        )
        yield delivered
        self.metrics.add("copy", self.sim.now - t0)
        self.track.end()

    # ------------------------------------------------------------------
    # Steal pass (one pass per phase; see module docstring)
    # ------------------------------------------------------------------

    def _steal_pass(self, kind: ChunkKind):
        foreign = [
            p
            for p in range(self.layout.num_partitions)
            if p % self.config.machines != self.machine
        ]
        self._rng.shuffle(foreign)
        for partition in foreign:
            master = partition % self.config.machines
            request_id = self._new_request_id()
            reply = Event(self.sim, name=f"steal.p{partition}")
            self._pending[request_id] = reply.trigger
            if self._trace_on:
                self.track.instant(
                    "steal.propose",
                    args={"partition": partition, "master": master},
                )
            self.network.send(
                src=self.machine,
                dst=master,
                service=COMPUTE_SERVICE,
                kind="steal_request",
                size=STEAL_MESSAGE_BYTES,
                payload=(request_id, self.machine, partition, kind),
                epoch=self.epoch,
            )
            if self._liveness is None:
                message = yield reply
            else:
                # Fault-tolerant steal RPC: re-arm a timeout until the
                # reply lands or the proposed master is fenced; a dead
                # master counts as a rejection (the rollback will give
                # its partitions a fresh master anyway).  Waits follow
                # the seeded backoff policy, starting at the steal
                # timeout; waits past the first are accounted as retry
                # time in the trace.
                message = None
                steal_rng = random.Random(
                    retry_rng_seed(self.config.seed, self.machine, request_id)
                )
                steal_policy = RetryPolicy(
                    base=self.config.effective_steal_timeout(),
                    factor=1.5,
                    cap=4.0 * self.config.effective_lease_timeout(),
                )
                steal_attempt = 0
                while message is None:
                    wait_start = self.sim.now
                    period = steal_policy.delay(steal_attempt, steal_rng)
                    winner, value = yield self.sim.any_of(
                        [reply, self.sim.timeout(period)]
                    )
                    if winner is reply:
                        message = value
                        continue
                    if steal_attempt > 0:
                        self._retry_wait(wait_start, "steal.retry_wait")
                    steal_attempt += 1
                    if (
                        self._liveness.is_suspected(master)
                        or not self.network.is_reachable(master)
                    ):
                        self._pending.pop(request_id, None)
                        self.steal_timeouts += 1
                        break
                if message is None:
                    continue
            _rid, accepted, _partition = message.payload
            if accepted:
                yield from self._work_on_partition(partition, kind, master=False)

    # ------------------------------------------------------------------
    # Phases and the main loop
    # ------------------------------------------------------------------

    def _init_master_states(self, kind: ChunkKind) -> None:
        self._master_state = {}
        for partition in self.my_partitions:
            state = PartitionPhaseState(partition=partition, kind=kind)
            if kind is ChunkKind.UPDATES:
                state.accum_group = WaitGroup(
                    self.sim, name=f"accums.p{partition}"
                )
            self._master_state[partition] = state

    def _run_phase(self, kind: ChunkKind):
        self._init_master_states(kind)
        for partition in self.my_partitions:
            yield from self._work_on_partition(partition, kind, master=True)
        if self.config.stealing_enabled and self.config.machines > 1:
            # The wrapper span lets the attribution analyzer charge
            # proposal round-trip waits to steal overhead; work on an
            # accepted partition opens its own (inner) spans.
            self.track.begin("steal_pass")
            yield from self._steal_pass(kind)
            self.track.end()
        if kind is ChunkKind.EDGES:
            self._flush_all_buffers()
        # All in-flight chunk writes must land before the barrier.
        t0 = self.sim.now
        self.track.begin("flush_wait", cat="gp_master")
        yield self._write_group.wait()
        self.metrics.add("gp_master", self.sim.now - t0)
        self.track.end()
        if self.config.checkpointing:
            yield from self._checkpoint(kind)

    def _checkpoint(self, kind: ChunkKind):
        """Two-phase vertex-set checkpoint (Section 6.6).

        Phase one writes the new copies; phase two (retiring the old
        generation) is a metadata operation once all writes are durable.

        Under fault injection (a :class:`CheckpointRegistry` is
        attached) each checkpoint round gets a shared slot from the
        registry — never the slot holding the current durable
        generation, so a crash mid-checkpoint cannot corrupt the restore
        point — and each partition's writes carry a state snapshot plus
        the iteration to resume from (a scatter-phase checkpoint resumes
        its own iteration; a gather-phase one, having applied, resumes
        the next).  Durability is reported per partition once *all*
        replica writes are acked.
        """
        t0 = self.sim.now
        self.track.begin("checkpoint", cat="copy")
        registry = self._registry
        events = []
        if registry is None:
            events = [
                self._store_vertex_set(partition, checkpoint=True)
                for partition in self.my_partitions
            ]
        else:
            phase_index = 0 if kind is ChunkKind.EDGES else 1
            resume = (
                self.job.iteration
                if kind is ChunkKind.EDGES
                else self.job.iteration + 1
            )
            key = (self.epoch, self.job.iteration, phase_index)
            slot = registry.round_slot(key, resume)
            base = registry.base_for_slot(slot)
            for partition in self.my_partitions:
                payload = {
                    "snapshot": self.workload.snapshot_partition(partition),
                    "resume_iteration": resume,
                    # Freshness metadata: restore verifies the chunk it
                    # read belongs to the generation it asked for (a
                    # stale-read fault serves an older, validly-sealed
                    # version — checksums alone cannot catch that).
                    "key": key,
                }
                event = self._store_vertex_set(
                    partition,
                    checkpoint=True,
                    base=base,
                    first_chunk_payload=payload,
                )
                event.subscribe(
                    lambda _e, p=partition: registry.note_durable(
                        key, p, self.sim.now,
                        machine=self.machine,
                        parent=self._causal.head(self.machine),
                    )
                )
                events.append(event)
        for event in events:
            yield event
        self.checkpoints_written += len(events)
        self.metrics.add("copy", self.sim.now - t0)
        self.track.end()

    def _enter_barrier(self, stats=None, label=None, phase=None):
        t0 = self.sim.now
        self.track.begin("barrier", cat="barrier")
        causal = label is not None and self._causal.enabled
        if causal:
            self._causal.barrier_arrive(
                self.machine, self.epoch, label, phase
            )
        yield self.barrier.wait(party=self.machine)
        if causal:
            # The first resumer materializes the release event (parented
            # to every arrival); each resumer's chain head becomes it.
            self._causal.barrier_release(
                self.machine, self.epoch, label, phase
            )
        self.metrics.add("barrier", self.sim.now - t0)
        if stats is not None:
            self.job.note_barrier_wait(stats, self.sim.now - t0)
        self.track.end()

    def _preprocess(self):
        """Simulate this machine's share of the one-pass pre-processing.

        Each machine reads its share of the unsorted input edge list from
        its local device and writes the partitioned edge chunks to
        uniformly random storage engines (the chunks themselves were
        pre-placed by the runtime; this phase accounts for the I/O).
        """
        share = self.input_bytes_share
        chunk_bytes = self.config.chunk_bytes
        remaining = share
        while remaining > 0:
            size = min(chunk_bytes, remaining)
            remaining -= size
            # Read the input slice locally ...
            yield self.local_store.local_input_read(size)
            # ... and write the equivalent volume of partitioned edge
            # chunks to a random storage engine (charged, not stored:
            # the data plane was pre-placed with the same RNG stream).
            target = self.placement.choose_write()
            request_id = self._new_request_id()
            ack = Event(self.sim, name="pwrite.ack")
            self._pending[request_id] = ack.trigger
            self.network.send(
                src=self.machine,
                dst=target,
                service=store_engine.SERVICE,
                kind="pwrite",
                size=size,
                payload=(request_id, self.machine, COMPUTE_SERVICE, size),
                epoch=self.epoch,
            )
            yield ack

    def main(self):
        """The engine's top-level process (Figure 4 main loop)."""
        track = self.track
        # preprocess is epoch-uniform: build_epoch sets it identically on
        # every engine, so all machines take the same branch together.
        if self.preprocess:  # chaos: ignore[CHX010,CHX022]
            track.begin("preprocess")
            yield from self._preprocess()
            track.end()
            track.begin("preprocess.barrier")
            if self._causal.enabled:
                self._causal.barrier_arrive(
                    self.machine, self.epoch, "preprocess", "preprocess"
                )
            yield self.barrier.wait(party=self.machine)
            if self._causal.enabled:
                self._causal.barrier_release(
                    self.machine, self.epoch, "preprocess", "preprocess"
                )
            track.end()
            self.job.note_preprocessing_done(self.sim.now)

        while True:
            # -- scatter phase ------------------------------------------
            # Capture the stats object up front: the first engine through
            # ``decide_after_gather`` advances ``current_stats``, so late
            # reporters must not charge the next iteration.
            stats = self.job.current_stats
            phase_start = self.sim.now
            # Publish the iteration for measurement sites that have no
            # iteration argument (store/net handlers): all engines are
            # barrier-aligned on the same iteration.
            self._host.set_iteration(self.job.iteration)
            if self._trace_on:
                track.begin("scatter", args={"iteration": self.job.iteration})
            self.job.begin_scatter()
            yield from self._run_phase(ChunkKind.EDGES)
            yield from self._enter_barrier(
                stats, label=str(self.job.iteration), phase="scatter"
            )
            stop = self.job.decide_after_scatter(self.barrier.generation)
            self.job.note_phase_seconds(
                stats, "scatter", self.sim.now - phase_start
            )
            if self._trace_on:
                track.end()
            if stop:
                break
            # -- gather phase (apply folded in) ---------------------------
            phase_start = self.sim.now
            if self._trace_on:
                track.begin("gather", args={"iteration": self.job.iteration})
            yield from self._run_phase(ChunkKind.UPDATES)
            yield from self._enter_barrier(
                stats, label=str(self.job.iteration), phase="gather"
            )
            stop = self.job.decide_after_gather(self.barrier.generation)
            self.job.note_phase_seconds(
                stats, "gather", self.sim.now - phase_start
            )
            if self._trace_on:
                track.end()
            if stop:
                break

"""Workloads: what flows through the engines.

The computation engine (:mod:`repro.core.compute`) is written against a
small workload interface so the same scheduling/stealing/batching logic
drives two execution modes:

:class:`DataWorkload`
    Functional mode: chunks carry real numpy edge/update payloads and
    the user algorithm's vectorized scatter/gather/apply run on them.
    Results are exact.

:class:`ModelWorkload`
    Capacity mode: chunks are phantoms (sizes only) and per-iteration
    update volumes come from an :class:`~repro.perf.profiles.ActivityProfile`.
    Used for paper-scale projections (RMAT-36) that no machine could
    materialize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.gas import GasAlgorithm, GraphContext, State, state_slice
from repro.partition.streaming import PartitionLayout
from repro.store.chunk import Chunk


@dataclass
class UpdateBatch:
    """Updates destined for one partition, produced by one scatter chunk."""

    partition: int
    count: int
    nbytes: int
    payload: Optional[Dict[str, np.ndarray]]  # {"dst": ..., "value": ...}


class GatherBuffer:
    """Deferred gather input for one partition, one worker.

    The simulated schedule delivers update chunks in an order that
    depends on device queues, stealing and (under fault injection) on
    recovery timing.  Floating-point reduction is not associative, so
    applying updates in arrival order would make the *bits* of the final
    vertex values schedule-dependent — fatal for the recovery invariant
    that a fault-injected run equals an undisturbed run byte for byte.

    Workers therefore buffer the raw ``(dst_local, value)`` pairs while
    streaming and the master replays the union once, in the canonical
    order of :func:`canonical_update_order`, at apply time.  The replay
    is a pure host-side reordering: the simulated timing (per-chunk CPU
    charges, accumulator ship sizes, merge costs) is untouched.
    """

    __slots__ = ("_dst", "_values")

    def __init__(self):
        self._dst: List[np.ndarray] = []
        self._values: List[np.ndarray] = []

    def append(self, dst_local: np.ndarray, values: np.ndarray) -> None:
        if len(dst_local) == 0:
            return
        self._dst.append(dst_local)
        self._values.append(values)

    def extend(self, other: "GatherBuffer") -> None:
        self._dst.extend(other._dst)
        self._values.extend(other._values)

    def merged(self) -> Optional[Dict[str, np.ndarray]]:
        """All buffered updates concatenated, or ``None`` if empty."""
        if not self._dst:
            return None
        return {
            "dst": np.concatenate(self._dst),
            "value": np.concatenate(self._values),
        }


def canonical_update_order(
    dst_local: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """A schedule-independent total order over gather updates.

    Sorts by destination vertex, breaking ties by the raw bytes of the
    update value — a total order over the update *multiset*, so any two
    runs that produce the same updates (in any arrival order) replay
    them identically.  The byte comparison is arbitrary but total (it
    distinguishes NaN payloads and -0.0/0.0, which compare equal
    numerically) and works for structured update dtypes too.
    """
    if len(values) == 0:
        return np.arange(0)
    raw = np.ascontiguousarray(values).view(np.uint8)
    raw = raw.reshape(len(values), -1)
    keys = [raw[:, i] for i in range(raw.shape[1] - 1, -1, -1)]
    keys.append(np.asarray(dst_local))
    return np.lexsort(keys)


class Workload:
    """Interface between the computation engine and the data plane."""

    algorithm: GasAlgorithm
    layout: PartitionLayout

    def vertex_set_bytes(self, partition: int) -> int:
        raise NotImplementedError

    def accum_bytes(self, partition: int) -> int:
        raise NotImplementedError

    def begin_iteration(self, iteration: int) -> None:
        """Hook called by the runtime before each iteration's scatter."""

    def scatter_chunk(
        self, partition: int, chunk: Chunk, iteration: int
    ) -> List[UpdateBatch]:
        raise NotImplementedError

    def begin_gather(self, partition: int):
        """Create a fresh (identity) accumulator handle for ``partition``."""
        raise NotImplementedError

    def gather_chunk(self, partition: int, accum, chunk: Chunk) -> None:
        raise NotImplementedError

    def merge_accumulators(self, partition: int, master_accum, other) -> None:
        raise NotImplementedError

    def apply_partition(self, partition: int, accum, iteration: int) -> int:
        """Fold ``accum`` into the vertex values; return #changed."""
        raise NotImplementedError

    def finished(self, iteration: int, stats) -> bool:
        raise NotImplementedError

    def final_values(self) -> Optional[State]:
        return None


class DataWorkload(Workload):
    """Functional execution over real numpy payloads."""

    def __init__(
        self,
        algorithm: GasAlgorithm,
        layout: PartitionLayout,
        ctx: GraphContext,
        initial_values: Optional[State] = None,
    ):
        self.algorithm = algorithm
        self.layout = layout
        self.ctx = ctx
        self.values: State = algorithm.init_values(ctx)
        for name, array in self.values.items():
            if len(array) != ctx.num_vertices:
                raise ValueError(
                    f"state array {name!r} has length {len(array)}, "
                    f"expected {ctx.num_vertices}"
                )
        if initial_values is not None:
            # Resume from a checkpoint: overwrite the freshly initialized
            # state with the restored vertex values (Section 6.6 — all
            # computation state lives in the vertex values).
            for name, array in self.values.items():
                if name not in initial_values:
                    raise ValueError(f"checkpoint missing state array {name!r}")
                restored = np.asarray(initial_values[name])
                if restored.shape != array.shape:
                    raise ValueError(
                        f"checkpoint array {name!r} has shape "
                        f"{restored.shape}, expected {array.shape}"
                    )
                array[:] = restored

    # -- sizes ----------------------------------------------------------

    def vertex_set_bytes(self, partition: int) -> int:
        return self.layout.vertex_count(partition) * self.algorithm.vertex_bytes

    def accum_bytes(self, partition: int) -> int:
        return self.layout.vertex_count(partition) * self.algorithm.accum_bytes

    # -- scatter ----------------------------------------------------------

    def _partition_state(self, partition: int) -> State:
        start = self.layout.start(partition)
        stop = start + self.layout.vertex_count(partition)
        return state_slice(self.values, start, stop)

    def scatter_chunk(
        self, partition: int, chunk: Chunk, iteration: int
    ) -> List[UpdateBatch]:
        payload = chunk.payload
        if payload is None:
            raise ValueError("DataWorkload requires chunk payloads")
        src = payload["src"]
        dst = payload["dst"]
        weight = payload.get("weight")
        src_local = self.layout.to_local(partition, src)
        state = self._partition_state(partition)
        result = self.algorithm.scatter(state, src_local, dst, weight, iteration)
        if result is None:
            return []
        out_dst, out_values = result
        if len(out_dst) == 0:
            return []
        target = self.layout.partition_of(out_dst)
        order = np.argsort(target, kind="stable")
        sorted_targets = target[order]
        boundaries = np.searchsorted(
            sorted_targets, np.arange(self.layout.num_partitions + 1)
        )
        batches: List[UpdateBatch] = []
        for p in range(self.layout.num_partitions):
            lo, hi = boundaries[p], boundaries[p + 1]
            if lo == hi:
                continue
            index = order[lo:hi]
            count = int(hi - lo)
            batches.append(
                UpdateBatch(
                    partition=p,
                    count=count,
                    nbytes=count * self.algorithm.update_bytes,
                    payload={
                        "dst": out_dst[index],
                        "value": out_values[index],
                    },
                )
            )
        return batches

    # -- gather / apply ------------------------------------------------------
    #
    # The accumulator handle workers pass around is a GatherBuffer of
    # raw updates, not the algorithm's numeric accumulator: the numeric
    # reduction happens exactly once per partition per iteration, at
    # apply time, in canonical update order (see GatherBuffer).  The
    # simulated costs are unchanged — chunk CPU is charged on receipt,
    # the shipped "accumulator" keeps its accum_bytes wire size, and
    # merge/apply CPU is charged by the master as before.

    def begin_gather(self, partition: int):
        return GatherBuffer()

    def gather_chunk(self, partition: int, accum, chunk: Chunk) -> None:
        payload = chunk.payload
        if payload is None:
            raise ValueError("DataWorkload requires chunk payloads")
        dst_local = self.layout.to_local(partition, payload["dst"])
        accum.append(dst_local, payload["value"])

    def merge_accumulators(self, partition: int, master_accum, other) -> None:
        master_accum.extend(other)

    def apply_partition(self, partition: int, accum, iteration: int) -> int:
        state = self._partition_state(partition)
        numeric = self.algorithm.make_accumulator(
            self.layout.vertex_count(partition)
        )
        merged = accum.merged() if accum is not None else None
        if merged is not None:
            order = canonical_update_order(merged["dst"], merged["value"])
            self.algorithm.gather(
                numeric, merged["dst"][order], merged["value"][order], state
            )
        return int(self.algorithm.apply(state, numeric, iteration))

    def finished(self, iteration: int, stats) -> bool:
        return self.algorithm.finished(iteration, stats)

    def final_values(self) -> Optional[State]:
        return self.values

    # -- checkpoint snapshots (fault tolerance) --------------------------

    def snapshot_partition(self, partition: int) -> State:
        """Deep copy of one partition's vertex state (checkpoint payload)."""
        return {
            name: np.copy(array)
            for name, array in self._partition_state(partition).items()
        }

    def restore_partition(self, partition: int, snapshot: State) -> None:
        """Overwrite one partition's vertex state from a checkpoint."""
        state = self._partition_state(partition)
        for name, array in state.items():
            if name not in snapshot:
                raise ValueError(f"checkpoint missing state array {name!r}")
            array[:] = snapshot[name]

    def reset_to_initial(self) -> None:
        """Roll all vertex state back to the algorithm's initial values.

        Used when a failure strikes before the first checkpoint becomes
        durable: recovery restarts the computation from scratch.
        """
        fresh = self.algorithm.init_values(self.ctx)
        for name, array in self.values.items():
            array[:] = fresh[name]


class ModelWorkload(Workload):
    """Phantom execution driven by an activity profile.

    ``profile`` supplies, per iteration, the expected number of updates
    produced per edge *streamed* (the whole edge set is streamed every
    scatter — the X-Stream/Chaos design) and the iteration count.
    Updates are routed to partitions proportionally to their vertex
    counts (uniform mixing), which matches random-destination skew well
    enough for capacity projections.
    """

    def __init__(self, algorithm: GasAlgorithm, layout: PartitionLayout, profile):
        self.algorithm = algorithm
        self.layout = layout
        self.profile = profile
        self._partition_weights = np.array(
            [layout.vertex_count(p) for p in range(layout.num_partitions)],
            dtype=np.float64,
        )
        total = self._partition_weights.sum()
        if total > 0:
            self._partition_weights /= total

    def vertex_set_bytes(self, partition: int) -> int:
        return self.layout.vertex_count(partition) * self.algorithm.vertex_bytes

    def accum_bytes(self, partition: int) -> int:
        return self.layout.vertex_count(partition) * self.algorithm.accum_bytes

    def scatter_chunk(
        self, partition: int, chunk: Chunk, iteration: int
    ) -> List[UpdateBatch]:
        factor = self.profile.update_factor(iteration)
        produced = int(round(chunk.records * factor))
        if produced <= 0:
            return []
        batches: List[UpdateBatch] = []
        # Deterministic proportional split (largest-remainder not needed
        # at chunk granularity; rounding noise is negligible).
        for p in range(self.layout.num_partitions):
            count = int(round(produced * self._partition_weights[p]))
            if count <= 0:
                continue
            batches.append(
                UpdateBatch(
                    partition=p,
                    count=count,
                    nbytes=count * self.algorithm.update_bytes,
                    payload=None,
                )
            )
        return batches

    def begin_gather(self, partition: int):
        return None  # phantom accumulator

    def gather_chunk(self, partition: int, accum, chunk: Chunk) -> None:
        pass

    def merge_accumulators(self, partition: int, master_accum, other) -> None:
        pass

    def apply_partition(self, partition: int, accum, iteration: int) -> int:
        return 0

    def finished(self, iteration: int, stats) -> bool:
        return iteration + 1 >= self.profile.iterations

"""Workloads: what flows through the engines.

The computation engine (:mod:`repro.core.compute`) is written against a
small workload interface so the same scheduling/stealing/batching logic
drives two execution modes:

:class:`DataWorkload`
    Functional mode: chunks carry real numpy edge/update payloads and
    the user algorithm's vectorized scatter/gather/apply run on them.
    Results are exact.

:class:`ModelWorkload`
    Capacity mode: chunks are phantoms (sizes only) and per-iteration
    update volumes come from an :class:`~repro.perf.profiles.ActivityProfile`.
    Used for paper-scale projections (RMAT-36) that no machine could
    materialize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.gas import GasAlgorithm, GraphContext, State, state_slice
from repro.partition.streaming import PartitionLayout
from repro.store.chunk import Chunk


@dataclass
class UpdateBatch:
    """Updates destined for one partition, produced by one scatter chunk."""

    partition: int
    count: int
    nbytes: int
    payload: Optional[Dict[str, np.ndarray]]  # {"dst": ..., "value": ...}


class Workload:
    """Interface between the computation engine and the data plane."""

    algorithm: GasAlgorithm
    layout: PartitionLayout

    def vertex_set_bytes(self, partition: int) -> int:
        raise NotImplementedError

    def accum_bytes(self, partition: int) -> int:
        raise NotImplementedError

    def begin_iteration(self, iteration: int) -> None:
        """Hook called by the runtime before each iteration's scatter."""

    def scatter_chunk(
        self, partition: int, chunk: Chunk, iteration: int
    ) -> List[UpdateBatch]:
        raise NotImplementedError

    def begin_gather(self, partition: int):
        """Create a fresh (identity) accumulator handle for ``partition``."""
        raise NotImplementedError

    def gather_chunk(self, partition: int, accum, chunk: Chunk) -> None:
        raise NotImplementedError

    def merge_accumulators(self, partition: int, master_accum, other) -> None:
        raise NotImplementedError

    def apply_partition(self, partition: int, accum, iteration: int) -> int:
        """Fold ``accum`` into the vertex values; return #changed."""
        raise NotImplementedError

    def finished(self, iteration: int, stats) -> bool:
        raise NotImplementedError

    def final_values(self) -> Optional[State]:
        return None


class DataWorkload(Workload):
    """Functional execution over real numpy payloads."""

    def __init__(
        self,
        algorithm: GasAlgorithm,
        layout: PartitionLayout,
        ctx: GraphContext,
        initial_values: Optional[State] = None,
    ):
        self.algorithm = algorithm
        self.layout = layout
        self.ctx = ctx
        self.values: State = algorithm.init_values(ctx)
        for name, array in self.values.items():
            if len(array) != ctx.num_vertices:
                raise ValueError(
                    f"state array {name!r} has length {len(array)}, "
                    f"expected {ctx.num_vertices}"
                )
        if initial_values is not None:
            # Resume from a checkpoint: overwrite the freshly initialized
            # state with the restored vertex values (Section 6.6 — all
            # computation state lives in the vertex values).
            for name, array in self.values.items():
                if name not in initial_values:
                    raise ValueError(f"checkpoint missing state array {name!r}")
                restored = np.asarray(initial_values[name])
                if restored.shape != array.shape:
                    raise ValueError(
                        f"checkpoint array {name!r} has shape "
                        f"{restored.shape}, expected {array.shape}"
                    )
                array[:] = restored

    # -- sizes ----------------------------------------------------------

    def vertex_set_bytes(self, partition: int) -> int:
        return self.layout.vertex_count(partition) * self.algorithm.vertex_bytes

    def accum_bytes(self, partition: int) -> int:
        return self.layout.vertex_count(partition) * self.algorithm.accum_bytes

    # -- scatter ----------------------------------------------------------

    def _partition_state(self, partition: int) -> State:
        start = self.layout.start(partition)
        stop = start + self.layout.vertex_count(partition)
        return state_slice(self.values, start, stop)

    def scatter_chunk(
        self, partition: int, chunk: Chunk, iteration: int
    ) -> List[UpdateBatch]:
        payload = chunk.payload
        if payload is None:
            raise ValueError("DataWorkload requires chunk payloads")
        src = payload["src"]
        dst = payload["dst"]
        weight = payload.get("weight")
        src_local = self.layout.to_local(partition, src)
        state = self._partition_state(partition)
        result = self.algorithm.scatter(state, src_local, dst, weight, iteration)
        if result is None:
            return []
        out_dst, out_values = result
        if len(out_dst) == 0:
            return []
        target = self.layout.partition_of(out_dst)
        order = np.argsort(target, kind="stable")
        sorted_targets = target[order]
        boundaries = np.searchsorted(
            sorted_targets, np.arange(self.layout.num_partitions + 1)
        )
        batches: List[UpdateBatch] = []
        for p in range(self.layout.num_partitions):
            lo, hi = boundaries[p], boundaries[p + 1]
            if lo == hi:
                continue
            index = order[lo:hi]
            count = int(hi - lo)
            batches.append(
                UpdateBatch(
                    partition=p,
                    count=count,
                    nbytes=count * self.algorithm.update_bytes,
                    payload={
                        "dst": out_dst[index],
                        "value": out_values[index],
                    },
                )
            )
        return batches

    # -- gather / apply ------------------------------------------------------

    def begin_gather(self, partition: int):
        return self.algorithm.make_accumulator(self.layout.vertex_count(partition))

    def gather_chunk(self, partition: int, accum, chunk: Chunk) -> None:
        payload = chunk.payload
        if payload is None:
            raise ValueError("DataWorkload requires chunk payloads")
        dst_local = self.layout.to_local(partition, payload["dst"])
        self.algorithm.gather(
            accum, dst_local, payload["value"], self._partition_state(partition)
        )

    def merge_accumulators(self, partition: int, master_accum, other) -> None:
        self.algorithm.merge(master_accum, other)

    def apply_partition(self, partition: int, accum, iteration: int) -> int:
        state = self._partition_state(partition)
        return int(self.algorithm.apply(state, accum, iteration))

    def finished(self, iteration: int, stats) -> bool:
        return self.algorithm.finished(iteration, stats)

    def final_values(self) -> Optional[State]:
        return self.values


class ModelWorkload(Workload):
    """Phantom execution driven by an activity profile.

    ``profile`` supplies, per iteration, the expected number of updates
    produced per edge *streamed* (the whole edge set is streamed every
    scatter — the X-Stream/Chaos design) and the iteration count.
    Updates are routed to partitions proportionally to their vertex
    counts (uniform mixing), which matches random-destination skew well
    enough for capacity projections.
    """

    def __init__(self, algorithm: GasAlgorithm, layout: PartitionLayout, profile):
        self.algorithm = algorithm
        self.layout = layout
        self.profile = profile
        self._partition_weights = np.array(
            [layout.vertex_count(p) for p in range(layout.num_partitions)],
            dtype=np.float64,
        )
        total = self._partition_weights.sum()
        if total > 0:
            self._partition_weights /= total

    def vertex_set_bytes(self, partition: int) -> int:
        return self.layout.vertex_count(partition) * self.algorithm.vertex_bytes

    def accum_bytes(self, partition: int) -> int:
        return self.layout.vertex_count(partition) * self.algorithm.accum_bytes

    def scatter_chunk(
        self, partition: int, chunk: Chunk, iteration: int
    ) -> List[UpdateBatch]:
        factor = self.profile.update_factor(iteration)
        produced = int(round(chunk.records * factor))
        if produced <= 0:
            return []
        batches: List[UpdateBatch] = []
        # Deterministic proportional split (largest-remainder not needed
        # at chunk granularity; rounding noise is negligible).
        for p in range(self.layout.num_partitions):
            count = int(round(produced * self._partition_weights[p]))
            if count <= 0:
                continue
            batches.append(
                UpdateBatch(
                    partition=p,
                    count=count,
                    nbytes=count * self.algorithm.update_bytes,
                    payload=None,
                )
            )
        return batches

    def begin_gather(self, partition: int):
        return None  # phantom accumulator

    def gather_chunk(self, partition: int, accum, chunk: Chunk) -> None:
        pass

    def merge_accumulators(self, partition: int, master_accum, other) -> None:
        pass

    def apply_partition(self, partition: int, accum, iteration: int) -> int:
        return 0

    def finished(self, iteration: int, stats) -> bool:
        return iteration + 1 >= self.profile.iterations

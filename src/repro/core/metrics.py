"""Runtime metrics: the Figure 14 and Figure 17 instrumentation.

Each computation engine attributes wall-clock (simulated) time to the
categories the paper's breakdown uses:

* ``gp_master`` — graph processing of partitions the engine masters;
* ``gp_stolen`` — graph processing of partitions stolen from others;
* ``copy``      — reading/writing vertex sets and shipping accumulators;
* ``merge``     — merging stealer accumulators and running Apply;
* ``merge_wait``— master idle, waiting for stealer accumulators;
* ``barrier``   — idle at the global phase barriers.

The cluster-level :class:`JobResult` also reports aggregate storage
bandwidth (Figure 14), bytes moved, and per-iteration statistics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

BREAKDOWN_CATEGORIES = (
    "gp_master",
    "gp_stolen",
    "copy",
    "merge",
    "merge_wait",
    "barrier",
)


@dataclass
class Breakdown:
    """Per-engine wall-time attribution (Figure 17 categories)."""

    gp_master: float = 0.0
    gp_stolen: float = 0.0
    copy: float = 0.0
    merge: float = 0.0
    merge_wait: float = 0.0
    barrier: float = 0.0

    def add(self, category: str, seconds: float) -> None:
        if category not in BREAKDOWN_CATEGORIES:
            raise ValueError(f"unknown breakdown category {category!r}")
        setattr(self, category, getattr(self, category) + seconds)

    def total(self) -> float:
        return sum(getattr(self, c) for c in BREAKDOWN_CATEGORIES)

    def fractions(self) -> Dict[str, float]:
        """Each category as a fraction of the total (0 if empty)."""
        total = self.total()
        if total <= 0:
            return {c: 0.0 for c in BREAKDOWN_CATEGORIES}
        return {c: getattr(self, c) / total for c in BREAKDOWN_CATEGORIES}

    def merged_with(self, other: "Breakdown") -> "Breakdown":
        result = Breakdown()
        for category in BREAKDOWN_CATEGORIES:
            result.add(
                category, getattr(self, category) + getattr(other, category)
            )
        return result


@dataclass
class IterationStats:
    """Counters for one scatter+gather iteration.

    The wall-clock fields are cluster-wide: the phase durations are the
    maximum over engines (phases end at a barrier, so the max is the
    phase's wall time) while the wait fields are *summed* over engines —
    the attribution analyzer (:mod:`repro.obs.critpath`) reads them as
    aggregate idle time the cluster spent at barriers / waiting for
    stolen accumulators during the iteration.
    """

    iteration: int
    updates_produced: int = 0
    update_bytes: int = 0
    edges_streamed: int = 0
    vertices_changed: int = 0
    #: Wall time of the phase, preprocessing excluded (max over engines).
    scatter_seconds: float = 0.0
    gather_seconds: float = 0.0
    #: Engine-seconds idle at the phase barriers (summed over engines).
    barrier_seconds: float = 0.0
    #: Engine-seconds masters spent waiting for stealer accumulators.
    steal_wait_seconds: float = 0.0
    steals_accepted: int = 0
    steals_rejected: int = 0


@dataclass
class JobResult:
    """Everything a Chaos run reports.

    ``runtime`` is simulated wall-clock seconds from the start of
    pre-processing to the final vertex state being durable, matching the
    paper's measurement convention (Section 8: *"all results include
    pre-processing time"*).
    """

    algorithm: str
    machines: int
    runtime: float
    preprocessing_seconds: float
    iterations: int
    iteration_stats: List[IterationStats] = field(default_factory=list)
    breakdowns: List[Breakdown] = field(default_factory=list)
    #: Total bytes served by all storage devices (reads + writes).
    storage_bytes: int = 0
    #: Bytes that crossed the network switch.
    network_bytes: int = 0
    #: Total steal proposals accepted / rejected.
    steals_accepted: int = 0
    steals_rejected: int = 0
    #: Final vertex state (data mode only).
    values: Optional[dict] = None
    #: Checkpoint count (when checkpointing is enabled).
    checkpoints: int = 0
    #: Update records / bytes actually written to storage (differs from
    #: the scatter-produced counts when update aggregation is on).
    updates_written_records: int = 0
    updates_written_bytes: int = 0
    #: Integrity/byzantine counters (injected message faults and their
    #: transport/storage-level suppression), cluster-wide totals.
    integrity: Dict[str, int] = field(default_factory=dict)

    @property
    def aggregate_bandwidth(self) -> float:
        """Aggregate storage bandwidth seen by computation (Figure 14)."""
        if self.runtime <= 0:
            return 0.0
        return self.storage_bytes / self.runtime

    def total_breakdown(self) -> Breakdown:
        result = Breakdown()
        for breakdown in self.breakdowns:
            result = result.merged_with(breakdown)
        return result

    def total_updates(self) -> int:
        return sum(s.updates_produced for s in self.iteration_stats)

    def summary(self) -> str:
        text = (
            f"{self.algorithm}: m={self.machines} runtime={self.runtime:.3f}s "
            f"iters={self.iterations} "
            f"bw={self.aggregate_bandwidth / 1e6:.1f} MB/s "
            f"steals={self.steals_accepted} "
            f"net={self.network_bytes / 1e6:.1f} MB"
        )
        if self.checkpoints:
            text += f" checkpoints={self.checkpoints}"
        hits = {k: v for k, v in sorted(self.integrity.items()) if v}
        if hits:
            text += " integrity[" + " ".join(
                f"{k}={v}" for k, v in hits.items()
            ) + "]"
        return text

    def to_dict(self) -> dict:
        """Machine-readable result (everything except the vertex arrays).

        ``values`` is summarized by key names only — benchmark scripts
        that need the arrays have the in-process object.
        """
        breakdown = self.total_breakdown()
        return {
            "algorithm": self.algorithm,
            "machines": self.machines,
            "runtime": self.runtime,
            "preprocessing_seconds": self.preprocessing_seconds,
            "iterations": self.iterations,
            "storage_bytes": self.storage_bytes,
            "network_bytes": self.network_bytes,
            "aggregate_bandwidth": self.aggregate_bandwidth,
            "steals_accepted": self.steals_accepted,
            "steals_rejected": self.steals_rejected,
            "checkpoints": self.checkpoints,
            "updates_written_records": self.updates_written_records,
            "updates_written_bytes": self.updates_written_bytes,
            "integrity": dict(sorted(self.integrity.items())),
            "total_updates": self.total_updates(),
            "breakdown": {
                category: getattr(breakdown, category)
                for category in BREAKDOWN_CATEGORIES
            },
            "iteration_stats": [
                {
                    "iteration": s.iteration,
                    "updates_produced": s.updates_produced,
                    "update_bytes": s.update_bytes,
                    "edges_streamed": s.edges_streamed,
                    "vertices_changed": s.vertices_changed,
                    "scatter_seconds": s.scatter_seconds,
                    "gather_seconds": s.gather_seconds,
                    "barrier_seconds": s.barrier_seconds,
                    "steal_wait_seconds": s.steal_wait_seconds,
                    "steals_accepted": s.steals_accepted,
                    "steals_rejected": s.steals_rejected,
                }
                for s in self.iteration_stats
            ],
            "value_keys": sorted(self.values) if self.values else [],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The :meth:`to_dict` payload serialized deterministically."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

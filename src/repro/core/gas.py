"""The edge-centric GAS programming model (Section 2).

Chaos adopts PowerLyra's simplified GAS variant: updates are scattered
only over *outgoing* edges and gathered only for *incoming* edges.  The
computation state lives entirely in per-vertex values; each iteration
runs a scatter phase (edges → updates) and a gather phase (updates →
accumulators, then Apply folds accumulators into vertex values).

User algorithms subclass :class:`GasAlgorithm` and provide vectorized
``scatter`` / ``gather`` / ``apply`` functions over numpy arrays —
Chaos' per-edge C++ callbacks become per-chunk array callbacks here, the
natural Python equivalent with identical semantics.

All three functions must be order-independent (commutative/associative
in their accumulation effects), which the runtime exploits for parallel
execution and stealer-accumulator merging — exactly the requirement the
paper states at the end of Section 2.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

#: Type alias: vertex state is a dict of named numpy arrays (structure of
#: arrays); a partition's state is a dict of views into the full arrays.
State = Dict[str, np.ndarray]

#: Canonical names of the three GAS kernel phases.  The host profiler
#: (:mod:`repro.obs.host`) records real wall/CPU time under exactly
#: these names when the compute engine runs the corresponding user
#: function, so sim-time spans and host cost line up span-for-span
#: (``repro.obs.host.GAS_HOST_PHASES`` mirrors this tuple; a test pins
#: the two together).
GAS_PHASES = ("scatter", "gather", "apply")


@dataclass
class GraphContext:
    """Graph-level facts available to algorithms at initialization."""

    num_vertices: int
    num_edges: int
    weighted: bool
    #: Out-degree per vertex; populated by the runtime when the algorithm
    #: sets ``needs_out_degrees`` (computed during pre-processing).
    out_degrees: Optional[np.ndarray] = None


class GasAlgorithm(abc.ABC):
    """Base class for edge-centric GAS algorithms.

    Subclasses define the three user functions of Figure 1/2 plus the
    metadata the runtime needs (update wire size, convergence rule).

    Wire sizes (``update_bytes``, ``vertex_bytes``, ``accum_bytes``)
    drive the modelled I/O volumes; they follow the paper's compact
    format (4-byte ids and values for graphs under 2^32 vertices).
    """

    #: Human-readable algorithm name (used in results and benchmarks).
    name: str = "gas"
    #: Requires an undirected (symmetrized) input graph (Table 1 note).
    needs_undirected: bool = False
    #: Requires edge weights.
    needs_weights: bool = False
    #: Requires the runtime to pre-compute out-degrees.
    needs_out_degrees: bool = False
    #: Fixed iteration count, or None to run until no updates are produced.
    max_iterations: Optional[int] = None
    #: Modelled bytes of one update on the wire/storage (dst id + value).
    update_bytes: int = 8
    #: Modelled bytes of one vertex's value on storage.
    vertex_bytes: int = 8
    #: Modelled bytes of one accumulator entry (shipped by gather stealers).
    accum_bytes: int = 8

    # -- state ----------------------------------------------------------

    @abc.abstractmethod
    def init_values(self, ctx: GraphContext) -> State:
        """Create the full-graph vertex state arrays (length |V| each)."""

    # -- the three user functions ----------------------------------------

    @abc.abstractmethod
    def scatter(
        self,
        values: State,
        src_local: np.ndarray,
        dst: np.ndarray,
        weight: Optional[np.ndarray],
        iteration: int,
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Produce updates for a chunk of edges.

        ``values`` is the state of the partition being scattered
        (views); ``src_local`` indexes into it; ``dst`` holds *global*
        destination ids.  Returns ``(dst_global, update_values)`` for
        the (possibly filtered) edges that emit updates, or ``None`` if
        no updates are produced.
        """

    @abc.abstractmethod
    def make_accumulator(self, n: int) -> np.ndarray:
        """A length-``n`` accumulator array filled with the identity."""

    @abc.abstractmethod
    def gather(
        self,
        accum: np.ndarray,
        dst_local: np.ndarray,
        values: np.ndarray,
        state: Optional[State] = None,
    ) -> None:
        """Fold a chunk of update values into the accumulator, in place.

        Must be commutative and associative over updates (Section 2).
        ``state`` is the partition's vertex state — read-only during
        gather, available because the vertex set is loaded into memory
        before streaming updates (Section 5.2); some algorithms (MCST,
        SCC, Conductance) filter updates against the destination's
        current value.
        """

    @abc.abstractmethod
    def merge(self, accum: np.ndarray, other: np.ndarray) -> None:
        """Merge a stealer's partial accumulator into the master's.

        Position-wise combination with the same semantics as gather
        (e.g. ``+=`` for sums, ``minimum`` for min-gathers); it must be
        commutative/associative so the master can fold stealer
        accumulators in any order (Figure 3).
        """

    def combine_updates(
        self, dst: np.ndarray, values: np.ndarray
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Pre-aggregate buffered updates sharing a destination.

        This is the Pregel-style combiner the paper discusses and
        rejects (Section 11.1: *"the cost of merging the updates to the
        same vertex outweighs the benefits from reduced network
        traffic"*).  It is optional (``ClusterConfig.aggregate_updates``)
        so the trade-off can be measured; returning ``None`` (the
        default) marks the algorithm as non-combinable.
        """
        return None

    @abc.abstractmethod
    def apply(
        self, values: State, accum: np.ndarray, iteration: int
    ) -> int:
        """Fold the merged accumulator into vertex values, in place.

        Returns the number of vertices whose value changed (drives
        convergence detection and the Figure 17 workload skew).
        """

    # -- convergence -------------------------------------------------------

    def finished(self, iteration: int, stats: "IterationStatsLike") -> bool:
        """Job-completion test evaluated after each gather barrier.

        Default policy: stop after ``max_iterations`` when set;
        otherwise stop when an iteration scattered no updates.
        """
        if self.max_iterations is not None:
            return iteration + 1 >= self.max_iterations
        return stats.updates_produced == 0

    # -- introspection ------------------------------------------------------

    def vertex_state_bytes(self) -> int:
        """Per-vertex memory footprint used by the partition-count rule."""
        return self.vertex_bytes + self.accum_bytes

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class IterationStatsLike:
    """Structural protocol for :meth:`GasAlgorithm.finished` inputs."""

    updates_produced: int
    vertices_changed: int


def state_slice(values: State, start: int, stop: int) -> State:
    """Views of each state array restricted to ``[start, stop)``.

    Because partitions are consecutive vertex ranges (Section 3), a
    partition's state is a set of contiguous views — apply mutates the
    canonical arrays in place, which is the in-memory analogue of the
    master writing the vertex set back to storage.
    """
    return {name: array[start:stop] for name, array in values.items()}

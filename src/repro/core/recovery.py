"""Failure recovery (Section 6.6).

Chaos tolerates transient machine failures through two facts: the
computation is bulk-synchronous (barriers after every phase) and all
computation state lives in the vertex values, which are checkpointed
with a two-phase protocol at every barrier.  Recovery is therefore:
restore the last durable vertex-value checkpoint, and re-execute from
the iteration it captured.

:func:`run_with_failure` reproduces that end to end on the simulated
cluster: it runs the job with checkpointing until the configured
failure point, charges the restore I/O (reading every partition's
vertex set from the surviving replicas), and re-runs the remainder from
the checkpointed values.  The recovered result is *functionally
identical* to an undisturbed run — the property the protocol exists to
guarantee — and the reported timeline decomposes into useful time, lost
work and restore time.
"""

from __future__ import annotations


from dataclasses import dataclass
import numpy as np

from repro.core.config import ClusterConfig
from repro.core.gas import GasAlgorithm
from repro.core.metrics import JobResult
from repro.core.runtime import ChaosCluster
from repro.graph.edgelist import EdgeList


@dataclass
class RecoveryReport:
    """Timeline of a run that survives one transient machine failure."""

    algorithm: str
    machines: int
    failed_iteration: int
    #: Simulated time until the failure (includes the lost partial
    #: iteration, which must be re-executed).
    time_before_failure: float
    #: Time to read every partition's vertex checkpoint back.
    restore_seconds: float
    #: Time of the re-execution from the checkpoint to completion.
    time_after_restore: float
    #: The undisturbed runtime, for overhead comparison.
    baseline_runtime: float
    result: JobResult
    #: Decomposed timeline (filled by the in-simulation fault path;
    #: the analytic path derives useful/lost from the phase times).
    useful_seconds: float = 0.0
    lost_seconds: float = 0.0
    #: Faults that fired (``FaultRecord`` tuples when fault-injected).
    faults: tuple = ()
    #: ``True``/``False`` once compared against an undisturbed twin run,
    #: ``None`` when no comparison was made.
    values_match_baseline: object = None
    #: The :class:`repro.faults.supervisor.FaultTimeline` when the run
    #: came from the in-simulation fault injector.
    timeline: object = None

    @property
    def total_runtime(self) -> float:
        return self.time_before_failure + self.restore_seconds + self.time_after_restore

    @property
    def overhead_fraction(self) -> float:
        """Extra time relative to the undisturbed run."""
        if self.baseline_runtime <= 0:
            return 0.0
        return self.total_runtime / self.baseline_runtime - 1.0

    def summary(self) -> str:
        return (
            f"{self.algorithm}: failed at iteration {self.failed_iteration}; "
            f"{self.total_runtime:.3f}s total vs {self.baseline_runtime:.3f}s "
            f"undisturbed ({self.overhead_fraction:+.1%})"
        )


class _BoundedIterations:
    """Wrapper that stops a quiescence-based algorithm after N iterations
    (used to capture the checkpoint state at the failure point).

    Duck-typed rather than a :class:`GasAlgorithm` subclass: everything
    except ``finished`` — including any algorithm-specific extension
    hooks the engine probes for — forwards to the wrapped instance.
    """

    def __init__(self, inner: GasAlgorithm, iterations: int):
        self._inner = inner
        self.name = inner.name
        self.needs_undirected = inner.needs_undirected
        self.needs_weights = inner.needs_weights
        self.needs_out_degrees = inner.needs_out_degrees
        self.update_bytes = inner.update_bytes
        self.vertex_bytes = inner.vertex_bytes
        self.accum_bytes = inner.accum_bytes
        self.max_iterations = iterations

    def __getattr__(self, name):
        # Only reached for attributes not set on the wrapper itself
        # (the bound/overridden ones above and ``finished`` below).
        return getattr(self._inner, name)

    def finished(self, iteration, stats):
        # Stop at the bound OR when the inner algorithm converges.
        if self._inner.finished(iteration, stats):
            return True
        return iteration + 1 >= self.max_iterations




def run_with_failure(
    algorithm_factory,
    edges: EdgeList,
    config: ClusterConfig,
    fail_after_iterations: int,
    tracer=None,
) -> RecoveryReport:
    """Run a job that loses a machine after ``fail_after_iterations``.

    ``algorithm_factory`` is a zero-argument callable producing a fresh
    algorithm instance (the runs must not share mutable state).  The
    configuration must have ``checkpointing=True`` — recovery without
    checkpoints is impossible, as in the real system.

    With a ``tracer``, the pre-failure run and the re-execution are
    traced back to back on one timeline, separated by ``failure``,
    ``restore.begin`` and ``restore.end`` markers on the cluster track
    (the baseline run is untraced — it exists only for comparison).
    """
    if fail_after_iterations < 1:
        raise ValueError("fail_after_iterations must be >= 1")
    if not config.checkpointing:
        raise ValueError("recovery requires checkpointing=True")

    trace_on = tracer is not None and tracer.enabled
    cluster_track = None
    if trace_on:
        from repro.obs.tracer import TID_JOB

        tracer.set_process(config.machines, "cluster")
        cluster_track = tracer.thread(config.machines, TID_JOB, "job")

    # Undisturbed baseline (also the functional reference).
    baseline = ChaosCluster(config).run(algorithm_factory(), edges)
    failed_iteration = min(fail_after_iterations, max(1, baseline.iterations))

    # Phase 1: run to the last barrier before the failure.  The vertex
    # values at that barrier are exactly what the two-phase checkpoint
    # made durable.
    bounded = _BoundedIterations(algorithm_factory(), failed_iteration)
    before = ChaosCluster(config, tracer=tracer).run(bounded, edges)
    checkpoint = {
        name: np.copy(array) for name, array in before.values.items()
    }

    # The failure strikes mid-iteration: on average half an iteration of
    # work since the checkpoint is lost and re-executed.
    per_iteration = before.runtime / max(1, before.iterations)
    lost_work = 0.5 * per_iteration

    # Restore cost: every partition's vertex set is read back from the
    # surviving storage engines *through the network*.  The devices and
    # the NICs stream concurrently, so the transfer is bounded by the
    # slower of the two stages, plus one request round trip.  Replicas
    # are hash-placed, so a fraction (m-1)/m of each machine's restore
    # bytes arrives over its NIC rather than from its local device.
    total_vertex_bytes = edges.num_vertices * algorithm_factory().vertex_bytes
    survivors = max(1, config.machines - 1)
    device_seconds = total_vertex_bytes / (config.device.bandwidth * survivors)
    per_machine_bytes = total_vertex_bytes / config.machines
    remote_fraction = (config.machines - 1) / config.machines
    ingress_seconds = (
        per_machine_bytes * remote_fraction / config.network.bandwidth
    )
    restore_seconds = (
        max(device_seconds, ingress_seconds) + config.network.round_trip()
    )

    if trace_on:
        # Lay the lost half-iteration and the restore I/O on the shared
        # timeline between the two traced runs; the re-execution's
        # bind_run() re-bases past these markers automatically.
        tracer.bind_run(lambda: 0.0)
        cluster_track.instant(
            "failure", args={"iteration": failed_iteration}, ts=lost_work
        )
        tracer.begin(
            config.machines, TID_JOB, "restore", cat="restore", ts=lost_work
        )
        tracer.end(
            config.machines,
            TID_JOB,
            args={"bytes": int(total_vertex_bytes)},
            ts=lost_work + restore_seconds,
        )

    # Phase 2: resume from the checkpointed values, continuing the
    # iteration numbering (some algorithms stamp state with it).
    after = ChaosCluster(config, tracer=tracer).run(
        algorithm_factory(),
        edges,
        initial_values=checkpoint,
        start_iteration=failed_iteration,
    )

    matches = set(after.values) == set(baseline.values) and all(
        np.array_equal(after.values[name], baseline.values[name])
        for name in after.values
    )

    return RecoveryReport(
        algorithm=algorithm_factory().name,
        machines=config.machines,
        failed_iteration=failed_iteration,
        time_before_failure=before.runtime + lost_work,
        restore_seconds=restore_seconds,
        time_after_restore=after.runtime,
        baseline_runtime=baseline.runtime,
        result=after,
        useful_seconds=before.runtime + after.runtime,
        lost_seconds=lost_work,
        values_match_baseline=matches,
    )

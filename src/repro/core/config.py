"""Cluster configuration: the knobs of every experiment in the paper.

One :class:`ClusterConfig` fully determines a simulated deployment —
machine count, cores, device and network models, chunk size, batch
factor, stealing bias, placement policy, checkpointing — so every figure
of the evaluation is a sweep over config fields.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.net.topology import GIGE_40, NetworkConfig
from repro.store.chunk import DEFAULT_CHUNK_BYTES
from repro.store.device import SSD_480GB, DeviceSpec
from repro.core.batching import request_window


@dataclass(frozen=True)
class ClusterConfig:
    """Parameters of a simulated Chaos deployment (Section 8 defaults)."""

    # -- cluster shape ---------------------------------------------------
    machines: int = 1
    #: CPU cores per machine (the Figure 10 knob).
    cores: int = 16
    #: Main memory per machine; bounds the streaming-partition vertex set.
    memory_bytes: int = 32 * 2**30

    # -- hardware models ---------------------------------------------------
    device: DeviceSpec = SSD_480GB
    network: NetworkConfig = GIGE_40

    # -- storage layout ---------------------------------------------------
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    #: "random" (Chaos) or "centralized" (Figure 15 baseline).
    placement: str = "random"
    #: Centralized-directory service rate (lookups/second); only used
    #: with the "centralized" placement.  Scale it with chunk rate when
    #: scaling chunk sizes.
    directory_lookups_per_second: float = 200_000.0
    #: Override the partition-count rule (partitions = machines × this).
    partitions_per_machine: Optional[int] = None

    # -- batching (Section 6.5) --------------------------------------------
    #: Batch factor k; the window is φk with φ from Eq. 3.
    batch_factor: int = 5
    #: Explicit outstanding-request window, overriding φk (Figure 16).
    request_window_override: Optional[int] = None

    # -- stealing (Section 5.4) ---------------------------------------------
    #: Steal bias α: 0 = never, 1 = Chaos default, math.inf = always.
    steal_alpha: float = 1.0

    # -- fault tolerance -----------------------------------------------------
    checkpointing: bool = False
    #: Replicas of every vertex chunk (1 = none).  The paper notes that
    #: tolerating storage failures "could easily be added by replicating
    #: the vertex sets" (Section 6.6); this implements it.
    vertex_replicas: int = 1
    #: Heartbeat period of the per-machine failure-detector sender.
    heartbeat_interval: float = 1e-3
    #: Lease duration: a machine whose heartbeat is this stale is
    #: suspected dead and fenced.  ``None`` derives 5 heartbeats.
    lease_timeout: Optional[float] = None
    #: Steal-proposal RPC timeout under fault injection (``None``
    #: derives from the lease; unused in fault-free runs).
    steal_timeout: Optional[float] = None
    #: Chunk-read RPC re-check period under fault injection: how often
    #: a blocked reader consults the failure detector about its target
    #: (``None`` derives from the lease; unused in fault-free runs).
    read_timeout: Optional[float] = None
    #: Reboot delay applied to crash faults with no explicit restart
    #: time (crash faults are transient machine failures, Section 6.6 —
    #: secondary storage survives the reboot).
    restart_seconds: float = 10e-3

    # -- integrity hardening -------------------------------------------------
    #: End-to-end integrity defences: CRC32 verify-on-read of sealed
    #: chunks, transport duplicate suppression, write-verify, and
    #: checkpoint freshness checks.  ``False`` is a *test hook* for the
    #: chaos fuzzer — it re-exposes the unhardened engine so byzantine
    #: faults visibly corrupt results.  Never disable it in real runs.
    integrity_checks: bool = True

    # -- optional Pregel-style combining (Section 11.1) -----------------------
    #: Pre-aggregate buffered updates sharing a destination before
    #: writing them.  The paper evaluated and rejected this ("the cost
    #: of merging ... outweighs the benefits"); kept as a measurable
    #: ablation.
    aggregate_updates: bool = False

    # -- CPU cost model --------------------------------------------------
    #: Per-record processing costs (seconds of one core).  Defaults are
    #: chosen so that 16 cores comfortably sustain one SSD's bandwidth,
    #: matching the paper's observation that the core count has little
    #: effect until it is too low to sustain the network (Section 9.4).
    cpu_seconds_per_edge: float = 100e-9
    cpu_seconds_per_update: float = 80e-9
    cpu_seconds_per_vertex: float = 30e-9

    # -- determinism ------------------------------------------------------
    seed: int = 0

    def __post_init__(self):
        if self.machines < 1:
            raise ValueError("machines must be >= 1")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1")
        if self.batch_factor < 1:
            raise ValueError("batch_factor must be >= 1")
        if self.placement not in ("random", "centralized"):
            raise ValueError(f"unknown placement {self.placement!r}")
        if self.steal_alpha < 0:
            raise ValueError("steal_alpha must be non-negative")
        if (
            self.request_window_override is not None
            and self.request_window_override < 1
        ):
            raise ValueError("request_window_override must be >= 1")
        if self.vertex_replicas < 1:
            raise ValueError("vertex_replicas must be >= 1")
        if self.vertex_replicas > self.machines:
            raise ValueError("cannot replicate beyond the machine count")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.lease_timeout is not None and self.lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if self.steal_timeout is not None and self.steal_timeout <= 0:
            raise ValueError("steal_timeout must be positive")
        if self.read_timeout is not None and self.read_timeout <= 0:
            raise ValueError("read_timeout must be positive")
        if self.restart_seconds <= 0:
            raise ValueError("restart_seconds must be positive")

    # -- derived quantities ------------------------------------------------

    def effective_request_window(self) -> int:
        """Outstanding chunk requests per engine: φk, or the override.

        φ uses the request latencies only (network RTT vs device service
        latency), following the paper's measurement methodology: on the
        default SSD/40 GigE pair both are ~100 µs, giving φ = 2 and a
        window of 10 for k = 5 — the Figure 16 sweet spot.
        """
        if self.request_window_override is not None:
            return self.request_window_override
        return request_window(
            self.batch_factor,
            network_rtt=self.network.round_trip(),
            storage_latency=max(self.device.latency, 1e-9),
        )

    def effective_lease_timeout(self) -> float:
        """Failure-detector lease: explicit, or 5 heartbeat periods.

        Five missed heartbeats comfortably absorb queueing jitter at
        the monitor's NIC while still bounding detection latency.
        """
        if self.lease_timeout is not None:
            return self.lease_timeout
        return 5.0 * self.heartbeat_interval

    def effective_steal_timeout(self) -> float:
        """Steal-RPC re-check period: explicit, or one lease."""
        if self.steal_timeout is not None:
            return self.steal_timeout
        return self.effective_lease_timeout()

    def effective_read_timeout(self) -> float:
        """Chunk-read re-check period: explicit, or one lease.

        A blocked read is only ever *abandoned* once the failure
        detector has fenced its target, so this period trades wake-up
        overhead against abandonment latency — it can never cause a
        false data loss.
        """
        if self.read_timeout is not None:
            return self.read_timeout
        return self.effective_lease_timeout()

    def with_(self, **changes) -> "ClusterConfig":
        """A modified copy (dataclasses.replace convenience)."""
        return replace(self, **changes)

    @property
    def stealing_enabled(self) -> bool:
        return self.steal_alpha > 0

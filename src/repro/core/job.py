"""Job-level coordination: iteration control and cluster-wide counters.

The paper's computation is bulk-synchronous: barriers after each scatter
and each gather phase (Section 4).  Decisions that are conceptually
piggybacked on the barrier (has the job converged? advance the
iteration; reset the edge-set read cursors for the next pass) are
centralized here.  Every engine calls the ``decide_*`` methods after its
barrier release; the decision is computed once per barrier generation
and cached, which models the zero-cost metadata exchange a real barrier
implementation folds into its release message.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.metrics import IterationStats
from repro.core.workload import Workload
from repro.store.chunk import ChunkKind


class JobCoordinator:
    """Shared state of one Chaos job across all computation engines."""

    def __init__(
        self,
        workload: Workload,
        storage_engines: List,
        start_iteration: int = 0,
    ):
        self.workload = workload
        self.storage_engines = storage_engines
        self.iteration = start_iteration
        self.iteration_stats: List[IterationStats] = [
            IterationStats(iteration=start_iteration)
        ]
        self.steals_accepted = 0
        self.steals_rejected = 0
        self.preprocessing_end: float = 0.0
        self.done = False
        #: Optional observer called once per iteration at scatter start
        #: (the fault injector's ``iter=`` trigger hook).
        self.on_iteration = None
        self._decisions: Dict[int, bool] = {}
        self._scatter_started_for: int = -1

    # -- per-engine notifications -----------------------------------------

    @property
    def current_stats(self) -> IterationStats:
        return self.iteration_stats[-1]

    def note_preprocessing_done(self, now: float) -> None:
        self.preprocessing_end = max(self.preprocessing_end, now)

    def begin_scatter(self) -> None:
        """Called by every engine at scatter start; acts once per iteration.

        Resets the edge-set read cursors on every storage engine — the
        file-pointer reset of Section 7 — so the whole edge set streams
        again this iteration.
        """
        if self._scatter_started_for == self.iteration:
            return
        self._scatter_started_for = self.iteration
        for engine in self.storage_engines:
            engine.reset_cursors(ChunkKind.EDGES)
        self.workload.begin_iteration(self.iteration)
        if self.on_iteration is not None:
            self.on_iteration(self.iteration)

    def note_scatter(self, edge_records: int, batches) -> None:
        stats = self.current_stats
        stats.edges_streamed += edge_records
        for batch in batches:
            stats.updates_produced += batch.count
            stats.update_bytes += batch.nbytes

    def note_apply(self, changed: int) -> None:
        self.current_stats.vertices_changed += changed

    # Engines capture ``current_stats`` when a phase starts and report
    # against that object: by the time the phase's timing is known the
    # first engine through ``decide_after_gather`` may already have
    # advanced ``current_stats`` to the next iteration.

    def note_phase_seconds(
        self, stats: IterationStats, phase: str, seconds: float
    ) -> None:
        """Record one engine's wall time for a phase; the per-iteration
        figure is the max over engines (phases end at a barrier)."""
        if phase == "scatter":
            stats.scatter_seconds = max(stats.scatter_seconds, seconds)
        elif phase == "gather":
            stats.gather_seconds = max(stats.gather_seconds, seconds)
        else:
            raise ValueError(f"unknown phase {phase!r}")

    def note_barrier_wait(self, stats: IterationStats, seconds: float) -> None:
        """Accumulate one engine's barrier idle time (summed over engines)."""
        stats.barrier_seconds += seconds

    def note_steal_wait(self, stats: IterationStats, seconds: float) -> None:
        """Accumulate a master's wait for stealer accumulators."""
        stats.steal_wait_seconds += seconds

    def note_steal_decision(self, accepted: bool) -> None:
        """Count a steal proposal outcome, both per-job and per-iteration."""
        if accepted:
            self.steals_accepted += 1
            self.current_stats.steals_accepted += 1
        else:
            self.steals_rejected += 1
            self.current_stats.steals_rejected += 1

    # -- barrier decisions ---------------------------------------------------

    def decide_after_scatter(self, generation: int) -> bool:
        """True when the job ends right after this scatter barrier.

        Quiescence-terminating algorithms (``max_iterations is None``)
        are done when a scatter produced no updates: the subsequent
        gather and apply would be no-ops.
        """
        if generation not in self._decisions:
            algorithm = self.workload.algorithm
            quiescent = (
                algorithm.max_iterations is None
                and self.current_stats.updates_produced == 0
            )
            self._decisions[generation] = quiescent
            if quiescent:
                self.done = True
        return self._decisions[generation]

    def decide_after_gather(self, generation: int) -> bool:
        """True when the job ends after this gather barrier; otherwise
        advances to the next iteration."""
        if generation not in self._decisions:
            finished = self.workload.finished(self.iteration, self.current_stats)
            self._decisions[generation] = finished
            if finished:
                self.done = True
            else:
                self.iteration += 1
                self.iteration_stats.append(IterationStats(iteration=self.iteration))
        return self._decisions[generation]

    # -- result helpers --------------------------------------------------------

    def completed_iterations(self) -> int:
        """Iterations that ran a scatter (the last may have been empty)."""
        return len(self.iteration_stats)

"""The work-stealing acceptance criterion (Section 5.4).

When engine *i* finishes its own partitions it proposes to help the
master of every other partition.  The master accepts iff the stealer's
cost (reading the partition's vertex set, V/B) is outweighed by the
benefit (the remaining data D being drained by H+1 engines instead of
H):

    V/B + D/(B(H+1))  <  D/(BH)        (Eq. 1)
    ⟺   V + D/(H+1)  <  D/H           (Eq. 2)

The evaluation generalizes the right-hand side with a bias α
(Section 10.2): α = 0 disables stealing, α = ∞ always steals, α = 1 is
the Chaos default and empirically the best (Figure 18).

D is estimated locally: the master multiplies the unprocessed bytes on
its *local* storage engine by the machine count — accurate because
chunks are spread uniformly (Section 5.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class StealDecision:
    """Outcome of evaluating a steal proposal, with its inputs recorded."""

    accept: bool
    vertex_bytes: int
    remaining_bytes: float
    workers: int
    alpha: float

    def __bool__(self) -> bool:
        return self.accept


def should_accept_steal(
    vertex_bytes: int,
    remaining_bytes: float,
    workers: int,
    alpha: float = 1.0,
) -> StealDecision:
    """Evaluate Eq. 2 with bias α.

    Parameters
    ----------
    vertex_bytes:
        V — size of the partition's vertex set (the stealer must read it).
    remaining_bytes:
        D — estimated unprocessed edge/update bytes for the partition,
        cluster-wide.
    workers:
        H — engines currently working on the partition (master included);
        clamped to at least 1.
    alpha:
        Bias: 0 never steals, ``math.inf`` always steals, 1 is Chaos.
    """
    if vertex_bytes < 0:
        raise ValueError("vertex_bytes must be non-negative")
    if remaining_bytes < 0:
        raise ValueError("remaining_bytes must be non-negative")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    h = max(1, int(workers))

    if alpha == 0:
        accept = False
    elif math.isinf(alpha):
        accept = True
    else:
        accept = vertex_bytes + remaining_bytes / (h + 1) < (
            alpha * remaining_bytes / h
        )
    return StealDecision(
        accept=accept,
        vertex_bytes=vertex_bytes,
        remaining_bytes=remaining_bytes,
        workers=h,
        alpha=alpha,
    )


def estimate_cluster_remaining(local_remaining_bytes: int, machines: int) -> float:
    """D ≈ (local unprocessed bytes) × (number of machines).

    Valid because edge/update chunks are placed uniformly randomly
    across storage engines, so every engine holds ≈ 1/m of a partition's
    data (Section 5.4).
    """
    if machines < 1:
        raise ValueError("machines must be >= 1")
    if local_remaining_bytes < 0:
        raise ValueError("local_remaining_bytes must be non-negative")
    return float(local_remaining_bytes) * machines

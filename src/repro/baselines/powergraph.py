"""PowerGraph's grid (2-D hash) vertex-cut partitioner (Figure 20).

Figure 20 asks whether Chaos should have paid for high-quality upfront
partitioning instead of dynamic load balancing: it compares, for each
algorithm, the worst-case per-machine dynamic rebalancing cost in Chaos
against the time PowerGraph's grid partitioning algorithm needs to
partition the same graph *in memory* — and finds rebalancing costs about
a tenth of partitioning.

This module implements the actual grid partitioner: machines are
arranged in a (near-)square grid; vertex v hashes to a row and a column
("constraint sets"); an edge (u, v) may be placed only on machines in
the intersection of u's constraint set and v's constraint set, and the
partitioner picks the least-loaded candidate.  We report the real
replication factor and edge balance, and model the distributed
partitioning time from PowerGraph's published ingress throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.graph.edgelist import EdgeList

#: PowerGraph grid-ingress throughput per machine, edges/second.  The
#: PowerGraph paper reports grid ingress of a few million edges/second
#: across a 64-node cluster; per machine this is in the hundreds of
#: thousands.  This constant is the calibration knob for Figure 20.
GRID_EDGES_PER_SECOND_PER_MACHINE = 500_000.0


@dataclass
class GridPartitioning:
    """Result of grid-partitioning a graph across ``machines``."""

    machines: int
    rows: int
    cols: int
    #: machine index for every edge.
    assignment: np.ndarray
    #: mean number of machine replicas per vertex.
    replication_factor: float
    #: max / mean edges per machine.
    edge_balance: float

    def edges_per_machine(self) -> np.ndarray:
        return np.bincount(self.assignment, minlength=self.machines)


def _grid_shape(machines: int) -> Tuple[int, int]:
    """Closest-to-square factorization of the machine count."""
    rows = int(np.floor(np.sqrt(machines)))
    while machines % rows != 0:
        rows -= 1
    return rows, machines // rows


def grid_partition(edges: EdgeList, machines: int, seed: int = 0) -> GridPartitioning:
    """Run PowerGraph's grid heuristic over the edge list.

    Every vertex hashes to one grid row and one grid column; the
    candidate machines for edge (u, v) are the (row(u), col(v)) and
    (row(v), col(u)) grid cells; greedy placement takes the less-loaded
    candidate.  (For a 1-D grid this degrades to hashing, as in
    PowerGraph.)
    """
    if machines < 1:
        raise ValueError("machines must be >= 1")
    rows, cols = _grid_shape(machines)
    rng = np.random.default_rng(seed)
    # Random vertex -> (row, col) hashes.
    vertex_row = rng.integers(0, rows, size=edges.num_vertices)
    vertex_col = rng.integers(0, cols, size=edges.num_vertices)

    candidate_a = vertex_row[edges.src] * cols + vertex_col[edges.dst]
    candidate_b = vertex_row[edges.dst] * cols + vertex_col[edges.src]

    # Greedy least-loaded choice, streamed in blocks (the real ingress
    # is also greedy on running load counters).
    load = np.zeros(machines, dtype=np.int64)
    assignment = np.empty(edges.num_edges, dtype=np.int64)
    block = 65536
    for start in range(0, edges.num_edges, block):
        stop = min(start + block, edges.num_edges)
        a = candidate_a[start:stop]
        b = candidate_b[start:stop]
        pick_b = load[b] < load[a]
        chosen = np.where(pick_b, b, a)
        assignment[start:stop] = chosen
        load += np.bincount(chosen, minlength=machines)

    # Replication factor: how many machines hold a replica of each vertex.
    replicas = set()
    pair_src = edges.src * machines + assignment
    pair_dst = edges.dst * machines + assignment
    unique_pairs = np.union1d(np.unique(pair_src), np.unique(pair_dst))
    touched_vertices = np.unique(np.concatenate([edges.src, edges.dst]))
    replication = (
        len(unique_pairs) / len(touched_vertices) if len(touched_vertices) else 0.0
    )

    counts = np.bincount(assignment, minlength=machines)
    balance = float(counts.max() / counts.mean()) if counts.mean() > 0 else 1.0
    return GridPartitioning(
        machines=machines,
        rows=rows,
        cols=cols,
        assignment=assignment,
        replication_factor=float(replication),
        edge_balance=balance,
    )


def partitioning_time(num_edges: int, machines: int) -> float:
    """Modelled wall time for distributed in-memory grid partitioning.

    The graph must fit in cluster memory (the paper could not even run
    this at RMAT-32 scale and extrapolated from RMAT-27, as do we).
    """
    if machines < 1:
        raise ValueError("machines must be >= 1")
    return num_edges / (GRID_EDGES_PER_SECOND_PER_MACHINE * machines)


def rebalance_time(result) -> float:
    """Chaos' dynamic load-balancing cost: the worst per-machine
    *overhead* of achieving load balance.

    Following the paper's Figure 17 discussion ("the copying and merging
    time represents the overhead of achieving load balance"), the cost
    is merging + merge waits plus the share of vertex-set copying
    attributable to stolen partitions — NOT the stolen graph processing
    itself, which is useful work that merely moved machines.
    """
    costs = []
    for breakdown in result.breakdowns:
        graph_processing = breakdown.gp_master + breakdown.gp_stolen
        stolen_fraction = (
            breakdown.gp_stolen / graph_processing if graph_processing > 0 else 0.0
        )
        costs.append(
            breakdown.merge
            + breakdown.merge_wait
            + breakdown.copy * stolen_fraction
        )
    return max(costs) if costs else 0.0

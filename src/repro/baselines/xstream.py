"""X-Stream: the single-machine streaming-partition engine (Table 1).

X-Stream [Roy et al., SOSP 2013] is Chaos' ancestor and single-machine
baseline.  It shares the streaming-partition structure and edge-centric
GAS execution, but differs architecturally in exactly the ways Table 1's
single-machine comparison probes:

* **direct I/O** against the local device — no client-server request
  protocol, no per-chunk request latency, no batching window;
* perfectly **overlapped I/O and compute** through multiple in-memory
  buffers: a phase costs max(I/O time, CPU time), not their sum;
* no distribution machinery at all (no barriers, no vertex-chunk
  hashing, no stealing).

The functional execution reuses the exact GAS algorithm implementations
(via :class:`repro.core.workload.DataWorkload` with a one-machine
layout), so results are bit-identical to Chaos; only the cost model
differs.  The timing model is analytic: sequential streaming at device
bandwidth, which is precisely the regime X-Stream engineered for.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from repro.core.config import ClusterConfig
from repro.core.gas import GasAlgorithm, GraphContext
from repro.core.metrics import IterationStats, JobResult
from repro.core.workload import DataWorkload
from repro.graph.edgelist import EdgeList, bytes_per_edge
from repro.graph.stats import out_degrees as compute_out_degrees
from repro.partition.streaming import (
    PartitionLayout,
    choose_partition_count,
    partition_edges,
)
from repro.store.chunk import Chunk, ChunkKind
from repro.store.device import SSD_480GB, DeviceSpec


@dataclass(frozen=True)
class XStreamConfig:
    """Single-machine X-Stream deployment parameters."""

    device: DeviceSpec = SSD_480GB
    cores: int = 16
    memory_bytes: int = 32 * 2**30
    cpu_seconds_per_edge: float = 100e-9
    cpu_seconds_per_update: float = 80e-9
    cpu_seconds_per_vertex: float = 30e-9
    partitions: Optional[int] = None

    @classmethod
    def from_cluster(cls, config: ClusterConfig) -> "XStreamConfig":
        """Match an X-Stream run to a Chaos cluster config (same device,
        cores and CPU cost model) for apples-to-apples Table 1 rows."""
        return cls(
            device=config.device,
            cores=config.cores,
            memory_bytes=config.memory_bytes,
            cpu_seconds_per_edge=config.cpu_seconds_per_edge,
            cpu_seconds_per_update=config.cpu_seconds_per_update,
            cpu_seconds_per_vertex=config.cpu_seconds_per_vertex,
            partitions=config.partitions_per_machine,
        )


def run_xstream(
    algorithm: GasAlgorithm,
    edges: EdgeList,
    config: Optional[XStreamConfig] = None,
    **overrides,
) -> JobResult:
    """Execute ``algorithm`` on one machine with the X-Stream cost model."""
    if config is None:
        config = XStreamConfig(**overrides)
    elif overrides:
        config = replace(config, **overrides)
    if algorithm.needs_weights and not edges.weighted:
        raise ValueError(f"{algorithm.name} requires edge weights")

    bandwidth = config.device.bandwidth
    cores = config.cores

    if config.partitions is not None:
        count = config.partitions
    else:
        count = choose_partition_count(
            edges.num_vertices,
            machines=1,
            vertex_state_bytes=algorithm.vertex_state_bytes(),
            memory_bytes=config.memory_bytes,
        )
    layout = PartitionLayout.even(edges.num_vertices, count)
    parts = partition_edges(edges, layout)
    edge_bytes = bytes_per_edge(edges.num_vertices, edges.weighted)

    ctx = GraphContext(
        num_vertices=edges.num_vertices,
        num_edges=edges.num_edges,
        weighted=edges.weighted,
        out_degrees=(
            compute_out_degrees(edges) if algorithm.needs_out_degrees else None
        ),
    )
    workload = DataWorkload(algorithm, layout, ctx)

    # Pre-processing: one read pass over the input plus writing the
    # partitioned edge sets (Section 3).
    clock = 2.0 * edges.storage_bytes() / bandwidth
    preprocessing = clock

    # Pending update payloads per destination partition.
    pending: List[List[dict]] = [[] for _ in range(count)]
    iteration_stats: List[IterationStats] = []
    iteration = 0
    total_storage_bytes = 2 * edges.storage_bytes()

    while True:
        stats = IterationStats(iteration=iteration)
        # -- scatter: stream each partition's edges ----------------------
        scatter_start = clock
        update_bytes_written = 0
        for p, part in enumerate(parts):
            vertex_bytes = workload.vertex_set_bytes(p)
            clock += vertex_bytes / bandwidth
            total_storage_bytes += vertex_bytes
            if part.num_edges == 0:
                continue
            payload = {"src": part.src, "dst": part.dst}
            if part.weighted:
                payload["weight"] = part.weight
            chunk = Chunk(
                partition=p,
                kind=ChunkKind.EDGES,
                size=part.num_edges * edge_bytes,
                payload=payload,
                records=part.num_edges,
            )
            batches = workload.scatter_chunk(p, chunk, iteration)
            produced_bytes = 0
            for batch in batches:
                pending[batch.partition].append(batch.payload)
                stats.updates_produced += batch.count
                stats.update_bytes += batch.nbytes
                produced_bytes += batch.nbytes
            stats.edges_streamed += part.num_edges
            io_time = (chunk.size + produced_bytes) / bandwidth
            cpu_time = part.num_edges * config.cpu_seconds_per_edge / cores
            clock += max(io_time, cpu_time)
            total_storage_bytes += chunk.size + produced_bytes
            update_bytes_written += produced_bytes
        stats.scatter_seconds = clock - scatter_start

        if algorithm.max_iterations is None and stats.updates_produced == 0:
            iteration_stats.append(stats)
            break

        # -- gather (apply folded in) ---------------------------------------
        gather_start = clock
        for p in range(count):
            vertex_bytes = workload.vertex_set_bytes(p)
            clock += vertex_bytes / bandwidth
            total_storage_bytes += vertex_bytes
            accum = workload.begin_gather(p)
            update_count = 0
            update_nbytes = 0
            for payload in pending[p]:
                chunk = Chunk(
                    partition=p,
                    kind=ChunkKind.UPDATES,
                    size=len(payload["dst"]) * algorithm.update_bytes,
                    payload=payload,
                    records=len(payload["dst"]),
                )
                workload.gather_chunk(p, accum, chunk)
                update_count += chunk.records
                update_nbytes += chunk.size
            pending[p] = []
            io_time = update_nbytes / bandwidth
            cpu_time = update_count * config.cpu_seconds_per_update / cores
            clock += max(io_time, cpu_time)
            total_storage_bytes += update_nbytes
            changed = workload.apply_partition(p, accum, iteration)
            stats.vertices_changed += changed
            clock += layout.vertex_count(p) * config.cpu_seconds_per_vertex / cores
            clock += vertex_bytes / bandwidth  # write vertex set back
            total_storage_bytes += vertex_bytes
        stats.gather_seconds = clock - gather_start
        iteration_stats.append(stats)

        if workload.finished(iteration, stats):
            break
        iteration += 1

    return JobResult(
        algorithm=algorithm.name,
        machines=1,
        runtime=clock,
        preprocessing_seconds=preprocessing,
        iterations=len(iteration_stats),
        iteration_stats=iteration_stats,
        breakdowns=[],
        storage_bytes=total_storage_bytes,
        network_bytes=0,
        values=workload.final_values(),
    )

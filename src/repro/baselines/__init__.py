"""Baseline systems the paper compares against.

* :mod:`repro.baselines.xstream` — the single-machine X-Stream engine
  (Table 1): same streaming partitions, but direct local I/O instead of
  Chaos' client-server storage protocol.
* :mod:`repro.baselines.giraph` — out-of-core Giraph (Figure 19):
  Pregel-style static random vertex partitioning, strictly local I/O,
  no dynamic load balancing.
* :mod:`repro.baselines.powergraph` — PowerGraph's grid (2-D hash)
  vertex-cut partitioner and its cost model (Figure 20).
"""

from repro.baselines.giraph import GiraphConfig, run_giraph
from repro.baselines.powergraph import (
    GridPartitioning,
    grid_partition,
    partitioning_time,
)
from repro.baselines.xstream import XStreamConfig, run_xstream

__all__ = [
    "GiraphConfig",
    "GridPartitioning",
    "XStreamConfig",
    "grid_partition",
    "partitioning_time",
    "run_giraph",
    "run_xstream",
]

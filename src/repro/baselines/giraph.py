"""Out-of-core Giraph baseline (Figure 19).

Giraph (the open-source Pregel) partitions *vertices* randomly across
machines; each machine owns its vertices, their out-edges and their
incoming message queues, all spilled to local disk in the out-of-core
mode the paper evaluates.  The properties that matter for Figure 19:

* **static partitions, strictly local I/O** — a machine streams only
  its own store at its own device bandwidth.  A straggler (the machine
  that drew the hub vertices) cannot be helped: no work stealing, and no
  access to the aggregate bandwidth of the cluster;
* **per-superstep coordination overhead** (master/ZooKeeper barrier and
  worker coordination) that does not shrink with the cluster;
* **JVM object overhead** on both compute and message serialization —
  the paper attributes Giraph's order-of-magnitude absolute slowdown
  "largely [to] engineering issues (in particular, JVM overheads)".

Figure 19 normalizes each system to its own single-machine runtime, so
the constant software overheads cancel and what remains is exactly the
scaling gap caused by static partitioning — which this model reproduces
mechanistically via the straggler max over per-machine I/O times.

The vertex program executes functionally (the same GAS algorithm
implementations, hash-partitioned), so iteration counts and message
volumes are real, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from repro.core.gas import GasAlgorithm, GraphContext
from repro.core.metrics import IterationStats, JobResult
from repro.core.workload import DataWorkload
from repro.graph.edgelist import EdgeList, bytes_per_edge
from repro.graph.stats import out_degrees as compute_out_degrees
from repro.partition.streaming import PartitionLayout
from repro.store.chunk import Chunk, ChunkKind
from repro.store.device import SSD_480GB, DeviceSpec

_HASH_MIX = 2654435761  # Knuth multiplicative hash


@dataclass(frozen=True)
class GiraphConfig:
    """Out-of-core Giraph deployment model."""

    machines: int = 1
    device: DeviceSpec = SSD_480GB
    cores: int = 16
    #: JVM compute overhead relative to the C++ cost model.
    software_overhead: float = 8.0
    #: Serialized message size multiplier (Writable object overhead).
    message_bytes_factor: float = 4.0
    #: Master/ZooKeeper coordination cost per superstep (seconds).
    superstep_overhead: float = 1.0
    cpu_seconds_per_edge: float = 100e-9
    cpu_seconds_per_update: float = 80e-9
    cpu_seconds_per_vertex: float = 30e-9
    seed: int = 0


def vertex_owners(num_vertices: int, machines: int) -> np.ndarray:
    """Random (hashed) vertex -> machine assignment, Giraph's default."""
    vids = np.arange(num_vertices, dtype=np.uint64)
    mixed = (vids * np.uint64(_HASH_MIX)) & np.uint64(0xFFFFFFFF)
    return (mixed % np.uint64(machines)).astype(np.int64)


def run_giraph(
    algorithm: GasAlgorithm,
    edges: EdgeList,
    config: Optional[GiraphConfig] = None,
    **overrides,
) -> JobResult:
    """Execute ``algorithm`` under the out-of-core Giraph cost model."""
    if config is None:
        config = GiraphConfig(**overrides)
    elif overrides:
        config = replace(config, **overrides)
    if algorithm.needs_weights and not edges.weighted:
        raise ValueError(f"{algorithm.name} requires edge weights")

    machines = config.machines
    bandwidth = config.device.bandwidth
    owners = vertex_owners(edges.num_vertices, machines)

    # Static per-machine stores: owned vertices and their out-edges.
    vertices_per_machine = np.bincount(owners, minlength=machines)
    edges_per_machine = np.bincount(owners[edges.src], minlength=machines)
    edge_bytes = bytes_per_edge(edges.num_vertices, edges.weighted)
    vertex_bytes = algorithm.vertex_bytes
    message_bytes = algorithm.update_bytes * config.message_bytes_factor

    # Functional execution through the shared GAS implementations, with
    # a single logical partition (Giraph has no streaming partitions).
    layout = PartitionLayout.even(edges.num_vertices, 1)
    ctx = GraphContext(
        num_vertices=edges.num_vertices,
        num_edges=edges.num_edges,
        weighted=edges.weighted,
        out_degrees=(
            compute_out_degrees(edges) if algorithm.needs_out_degrees else None
        ),
    )
    workload = DataWorkload(algorithm, layout, ctx)
    payload = {"src": edges.src, "dst": edges.dst}
    if edges.weighted:
        payload["weight"] = edges.weight
    edge_chunk = Chunk(
        partition=0,
        kind=ChunkKind.EDGES,
        size=edges.num_edges * edge_bytes,
        payload=payload,
        records=edges.num_edges,
    )

    # Input loading: each machine ingests its share of the input and
    # writes its local store.
    clock = 2.0 * edges.storage_bytes() / (bandwidth * machines)
    preprocessing = clock
    storage_bytes = 2 * edges.storage_bytes()

    iteration_stats: List[IterationStats] = []
    iteration = 0
    # Messages pending delivery (per owner machine), from last superstep.
    inbound_messages = np.zeros(machines, dtype=np.int64)

    while True:
        stats = IterationStats(iteration=iteration)
        batches = workload.scatter_chunk(0, edge_chunk, iteration)
        outbound = np.zeros(machines, dtype=np.int64)
        all_dst = []
        all_values = []
        for batch in batches:
            outbound += np.bincount(
                owners[batch.payload["dst"]], minlength=machines
            )
            stats.updates_produced += batch.count
            stats.update_bytes += batch.nbytes
            all_dst.append(batch.payload["dst"])
            all_values.append(batch.payload["value"])
        stats.edges_streamed = edges.num_edges

        # Superstep cost: every machine streams its whole local store
        # (out-of-core), reads last superstep's spilled inbox, writes
        # this superstep's outbox spill; straggler max, plus the
        # coordination overhead.
        io_seconds = (
            vertices_per_machine * vertex_bytes * 2  # read + write state
            + edges_per_machine * edge_bytes  # stream local edges
            + inbound_messages * message_bytes  # read spilled inbox
            + outbound * message_bytes  # spill outbox
        ) / bandwidth
        cpu_seconds = (
            (
                edges_per_machine * config.cpu_seconds_per_edge
                + inbound_messages * config.cpu_seconds_per_update
                + vertices_per_machine * config.cpu_seconds_per_vertex
            )
            * config.software_overhead
            / config.cores
        )
        clock += float(np.max(io_seconds + cpu_seconds))
        clock += config.superstep_overhead
        storage_bytes += int(
            (vertices_per_machine * vertex_bytes * 2).sum()
            + (edges_per_machine * edge_bytes).sum()
            + ((inbound_messages + outbound) * message_bytes).sum()
        )

        # Deliver messages functionally (gather + apply).
        accum = workload.begin_gather(0)
        if all_dst:
            update_chunk = Chunk(
                partition=0,
                kind=ChunkKind.UPDATES,
                size=int(stats.update_bytes),
                payload={
                    "dst": np.concatenate(all_dst),
                    "value": np.concatenate(all_values),
                },
                records=stats.updates_produced,
            )
            workload.gather_chunk(0, accum, update_chunk)
        stats.vertices_changed = workload.apply_partition(0, accum, iteration)
        iteration_stats.append(stats)

        if algorithm.max_iterations is None and stats.updates_produced == 0:
            break
        if workload.finished(iteration, stats):
            break
        inbound_messages = outbound
        iteration += 1

    return JobResult(
        algorithm=f"Giraph/{algorithm.name}",
        machines=machines,
        runtime=clock,
        preprocessing_seconds=preprocessing,
        iterations=len(iteration_stats),
        iteration_stats=iteration_stats,
        breakdowns=[],
        storage_bytes=storage_bytes,
        network_bytes=0,
        values=workload.final_values(),
    )

"""Lint findings and output formats.

A :class:`Finding` is one rule violation at one source location.  The
three formatters target the three consumers: humans (``text``), tools
(``json``) and GitHub Actions PR annotations (``github`` — the
``::error file=…`` workflow-command syntax, which makes findings show up
inline on the diff).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable, List


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    file: str
    line: int
    rule_id: str
    severity: str  # "error" or "warning"
    message: str

    def location(self) -> str:
        return f"{self.file}:{self.line}"


def format_text(findings: Iterable[Finding]) -> str:
    """One human-readable line per finding."""
    return "\n".join(
        f"{f.file}:{f.line}: {f.rule_id} [{f.severity}] {f.message}"
        for f in findings
    )


def format_json(findings: Iterable[Finding], suppressed: int = 0) -> str:
    """Machine-readable JSON document with the finding list and counts."""
    items: List[dict] = [asdict(f) for f in findings]
    return json.dumps(
        {
            "tool": "chaos-repro check",
            "findings": items,
            "count": len(items),
            "suppressed": suppressed,
        },
        indent=2,
    )


def format_github(findings: Iterable[Finding]) -> str:
    """GitHub Actions workflow commands: inline annotations on PR diffs."""
    lines = []
    for f in findings:
        level = "error" if f.severity == "error" else "warning"
        # Workflow-command property values must escape , : and newlines.
        message = (
            f.message.replace("%", "%25")
            .replace("\n", "%0A")
            .replace(":", "%3A")
            .replace(",", "%2C")
        )
        lines.append(
            f"::{level} file={f.file},line={f.line},"
            f"title={f.rule_id}::{message}"
        )
    return "\n".join(lines)

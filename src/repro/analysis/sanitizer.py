"""Happens-before sanitizer for the emulated cluster.

A TSan-style dynamic race detector: every emulated machine carries a
vector clock, advanced by the synchronization edges the Chaos protocol
actually provides — steal-protocol messages, accumulator handoffs and
global barriers.  Components report accesses to cross-machine shared
state (vertex values, accumulators, steal queues, chunk stores) and the
sanitizer flags any conflicting pair of accesses from two machines that
is *not* ordered by happens-before.

Why it matters: the emulation shares Python objects between "machines"
for speed, so a compute path that mutates another machine's state
without a protocol edge is invisible to the functional tests (the sum
still comes out right) yet would be a data race — and a nondeterminism
source — on real hardware.  ``repro run --sanitize`` turns this on.

Deliberately conservative in what creates an edge: only *protocol*
synchronization (steal request/reply, accumulator shipment, barriers)
joins clocks.  Data-plane storage traffic does not, because reading a
chunk from a storage engine says nothing about whose writes you are
ordered with.  This is what lets the detector see a planted
unsynchronized mutation even though the buggy machine still exchanges
storage messages with everyone else.

Races integrate with the tracer (PR 1): each race is recorded as a
complete span on the cluster track covering the simulated-time interval
between its two accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

#: Message kinds that are genuine synchronization edges (the steal
#: protocol and the gather accumulator handoff).  Everything else is
#: data-plane traffic and does not order shared-state accesses.
SYNC_MESSAGE_KINDS = frozenset({"steal_request", "steal_reply", "accum"})


@dataclass(frozen=True)
class RaceAccess:
    """One side of a race: which machine touched the state, and how."""

    machine: int
    time: float
    label: str
    write: bool

    def describe(self) -> str:
        kind = "write" if self.write else "read"
        return f"{self.label} ({kind} by m{self.machine} at t={self.time:.6f})"


@dataclass(frozen=True)
class Race:
    """Two accesses to the same state not ordered by happens-before."""

    key: Hashable
    first: RaceAccess
    second: RaceAccess

    def describe(self) -> str:
        return (
            f"race on {self.key!r}: {self.first.describe()} || "
            f"{self.second.describe()}"
        )


class _Record:
    """Last access to a key by one machine (scalar clock component)."""

    __slots__ = ("component", "time", "label", "write")

    def __init__(self, component: int, time: float, label: str, write: bool):
        self.component = component
        self.time = time
        self.label = label
        self.write = write


class Sanitizer:
    """Vector clocks + access history + race reports.

    The runtime calls :meth:`bind_run` per simulation; the network,
    barrier and engines then feed it synchronization edges and shared-
    state accesses.  ``enabled`` mirrors the tracer convention so hot
    paths can guard cheaply.
    """

    enabled = True

    def __init__(self):
        self.machines = 0
        self.races: List[Race] = []
        self._clocks: List[List[int]] = []
        self._now: Callable[[], float] = lambda: 0.0
        self._track = None
        #: key -> {"r": {machine: _Record}, "w": {machine: _Record}}
        self._history: Dict[Hashable, Dict[str, Dict[int, _Record]]] = {}
        self._seen_pairs: set = set()
        self.accesses = 0
        self.sync_edges = 0
        #: When set, only keys of these kinds are tracked (CHX012 focus).
        self._focus: Optional[frozenset] = None

    # -- lifecycle ------------------------------------------------------

    def bind_run(
        self,
        machines: int,
        now: Optional[Callable[[], float]] = None,
        track=None,
    ) -> None:
        """Attach to a (new) simulation run of ``machines`` machines.

        Clocks and the access history reset (multi-run drivers reuse one
        sanitizer); detected races accumulate across runs.
        """
        if machines < 1:
            raise ValueError("machines must be >= 1")
        self.machines = machines
        self._clocks = [[0] * machines for _ in range(machines)]
        self._history = {}
        if now is not None:
            self._now = now
        self._track = track

    def clock_of(self, machine: int) -> Tuple[int, ...]:
        """Snapshot of one machine's vector clock (tests/debugging)."""
        return tuple(self._clocks[machine])

    def set_focus(self, kinds: Optional[Sequence[str]]) -> None:
        """Restrict access tracking to keys of the given *kinds*.

        A key's kind is its first tuple element (``("vertex", 0)`` ->
        ``"vertex"``) or the key itself for scalar keys.  ``check
        --deep``'s CHX012 pass produces the kind list; ``run --sanitize
        --focus-from-check`` feeds it here so dynamic instrumentation
        concentrates on statically flagged state.  ``None`` clears the
        focus (track everything).
        """
        self._focus = frozenset(kinds) if kinds is not None else None

    # -- synchronization edges -----------------------------------------

    def _tick(self, machine: int) -> None:
        self._clocks[machine][machine] += 1

    def on_send(self, src: int, kind: str) -> Optional[Tuple[int, ...]]:
        """Stamp an outgoing message; returns the clock to attach.

        Only protocol synchronization messages carry clocks (see
        :data:`SYNC_MESSAGE_KINDS`).
        """
        if kind not in SYNC_MESSAGE_KINDS:
            return None
        self._tick(src)
        self.sync_edges += 1
        return tuple(self._clocks[src])

    def on_receive(self, dst: int, clock: Optional[Sequence[int]]) -> None:
        """Join a received message's clock into the destination machine."""
        if clock is None:
            return
        own = self._clocks[dst]
        for i, value in enumerate(clock):
            if value > own[i]:
                own[i] = value
        self._tick(dst)

    def on_barrier(self, parties: Sequence[int]) -> None:
        """A barrier release: all parties join to the pairwise maximum."""
        members = [p for p in parties if p is not None]
        if not members:
            return
        joined = [0] * self.machines
        for party in members:
            for i, value in enumerate(self._clocks[party]):
                if value > joined[i]:
                    joined[i] = value
        for party in members:
            self._clocks[party] = list(joined)
            self._tick(party)
        self.sync_edges += 1

    # -- shared-state accesses -----------------------------------------

    def access(
        self,
        key: Hashable,
        machine: int,
        write: bool = False,
        label: str = "",
    ) -> None:
        """Record an access to shared state ``key`` by ``machine``.

        Flags a race when a conflicting prior access by another machine
        (write/write, write/read or read/write) is not happens-before
        this one, i.e. the prior machine's clock component at its access
        exceeds what ``machine`` has observed of that machine.
        """
        if self._focus is not None:
            kind = key[0] if isinstance(key, tuple) and key else key
            if kind not in self._focus:
                return
        self._tick(machine)
        self.accesses += 1
        clock = self._clocks[machine]
        history = self._history.setdefault(key, {"r": {}, "w": {}})

        conflicting = list(history["w"].items())
        if write:
            conflicting += list(history["r"].items())
        for other, record in conflicting:
            if other == machine:
                continue
            if record.component <= clock[other]:
                continue  # ordered: the prior access happens-before us
            self._report(
                key,
                RaceAccess(other, record.time, record.label, record.write),
                RaceAccess(machine, self._now(), label, write),
            )

        bucket = history["w"] if write else history["r"]
        bucket[machine] = _Record(
            component=clock[machine],
            time=self._now(),
            label=label,
            write=write,
        )

    def _report(self, key: Hashable, first: RaceAccess, second: RaceAccess) -> None:
        pair = (key, frozenset((first.machine, second.machine)))
        if pair in self._seen_pairs:
            return
        self._seen_pairs.add(pair)
        race = Race(key=key, first=first, second=second)
        self.races.append(race)
        if self._track is not None and getattr(self._track, "enabled", False):
            start = min(first.time, second.time)
            duration = abs(second.time - first.time)
            self._track.complete(
                f"race:{first.label}||{second.label}",
                start=start,
                duration=duration,
                cat="race",
                args={
                    "key": repr(key),
                    "first": first.describe(),
                    "second": second.describe(),
                },
            )

    # -- reporting ------------------------------------------------------

    def summary(self) -> str:
        lines = [
            f"sanitizer: {len(self.races)} race(s), "
            f"{self.accesses} tracked accesses, "
            f"{self.sync_edges} sync edges"
        ]
        for race in self.races:
            lines.append(f"  {race.describe()}")
        return "\n".join(lines)

"""The kernel worklist: static vectorizability × measured host skew.

``check --kernel-report`` fuses the two halves this PR and PR 6 built:

* the *static* half classifies every (algorithm, phase) kernel body —
  each :class:`~repro.core.gas.GasAlgorithm` subclass's ``scatter`` /
  ``gather`` / ``apply``, plus the shared Workload streaming kernels —
  as ``elementwise`` / ``segmented-reduction`` / ``sequential`` via the
  loop dependence analysis (:mod:`repro.analysis.flow.loops`);
* the *measured* half joins a ``run --host-profile`` JSON export (the
  PR 6 host metrics document) on the phase name, yielding each phase's
  share of real host CPU.

Ranking ``host_cpu_share × vectorizable`` puts the kernels that are
both *hot* and *ready* (no sequential dependence) at the top — the
standing work-queue the vectorization PRs burn down and re-verify.
The JSON form round-trips through :func:`check_kernel_report_schema`.
"""

from __future__ import annotations

import ast
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.flow.loops import (
    SEQUENTIAL,
    VECTOR_FACTOR,
    classify_function,
)
from repro.analysis.flow.project import ClassInfo, FunctionInfo, ProjectIndex

#: Version of the kernel-report JSON document.
KERNEL_REPORT_VERSION = 1

#: The GAS phases the static table covers (matches the host profiler's
#: ``GAS_HOST_PHASES`` — the join key of the fused report).
KERNEL_PHASES = ("scatter", "gather", "apply")

#: Shared streaming kernels that run inside each host phase alongside
#: the per-algorithm user function: (workload method name, phase).
_WORKLOAD_KERNELS = (
    ("scatter_chunk", "scatter"),
    ("gather_chunk", "gather"),
    ("apply_partition", "apply"),
)


def gas_algorithm_classes(index: ProjectIndex) -> List[ClassInfo]:
    """Every project class that (transitively) extends GasAlgorithm."""

    def is_gas(cls_info: ClassInfo, seen: frozenset) -> bool:
        if cls_info.qualname in seen:
            return False
        seen = seen | {cls_info.qualname}
        module = index.modules.get(cls_info.module)
        for chain in cls_info.base_chains:
            if chain[-1] == "GasAlgorithm":
                return True
            if module is None:
                continue
            base = index.resolve_chain_in(module, chain)
            if isinstance(base, ClassInfo) and is_gas(base, seen):
                return True
        return False

    out = [
        cls_info
        for _qual, cls_info in sorted(index.classes.items())
        if is_gas(cls_info, frozenset())
    ]
    return out


def _algorithm_name(cls_info: ClassInfo) -> str:
    """The runtime algorithm name: the class-level ``name`` constant
    when present (the host profiler records runs under it), else the
    lowercased class name."""
    for stmt in cls_info.node.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if (
                isinstance(target, ast.Name)
                and target.id == "name"
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                return stmt.value.value
    return cls_info.name.lower()


def phase_cpu_shares(host_doc: dict) -> Dict[str, float]:
    """Each GAS phase's share of measured host CPU, from a host
    metrics JSON document (``run --host-profile --host-json``)."""
    by_phase = host_doc.get("totals", {}).get("by_phase", {})
    total = sum(
        by_phase.get(phase, {}).get("cpu_seconds", 0.0)
        for phase in KERNEL_PHASES
    )
    if total <= 0:
        return {}
    return {
        phase: by_phase[phase]["cpu_seconds"] / total
        for phase in KERNEL_PHASES
        if phase in by_phase
    }


def _classify_row(func: FunctionInfo) -> Tuple[str, int, List[str]]:
    """(classification, loop count, sequential dependence names)."""
    classification, infos = classify_function(func)
    sequential_deps = sorted(
        {
            dep.name
            for info in infos
            if info.classification == SEQUENTIAL
            for dep in info.carried
            if dep.kind == "sequential"
        }
    )
    return classification, len(infos), sequential_deps


def build_kernel_report(
    paths: Sequence[str],
    host_doc: Optional[dict] = None,
    host_source: Optional[str] = None,
    index: Optional[ProjectIndex] = None,
) -> dict:
    """The kernel-report document: one row per (algorithm, phase)."""
    if index is None:
        index = ProjectIndex.build(paths)

    shares = phase_cpu_shares(host_doc) if host_doc else {}
    job = (host_doc or {}).get("job") or {}
    host_algorithm = job.get("algorithm")

    rows: List[dict] = []

    def add_row(algorithm: str, phase: str, func: FunctionInfo) -> None:
        classification, loops, sequential_deps = _classify_row(func)
        vectorizable = VECTOR_FACTOR[classification]
        share = shares.get(phase)
        if share is not None and host_algorithm is not None and (
            algorithm not in (host_algorithm, "*")
        ):
            # The profile measured one algorithm; other algorithms'
            # rows keep their static class but no measured share.
            share = None
        row = {
            "algorithm": algorithm,
            "phase": phase,
            "kernel": func.qualname,
            "file": func.file,
            "line": func.line,
            "classification": classification,
            "vectorizable": vectorizable,
            "loops": loops,
            "sequential_deps": sequential_deps,
            "host_cpu_share": share,
            "score": (share * vectorizable) if share is not None else None,
        }
        rows.append(row)

    for cls_info in gas_algorithm_classes(index):
        algorithm = _algorithm_name(cls_info)
        for phase in KERNEL_PHASES:
            method = index.resolve_method(cls_info, phase)
            if method is None or method.class_name != cls_info.name:
                continue  # inherited: reported on the defining class
            add_row(algorithm, phase, method)

    # The shared streaming kernels run for *every* algorithm ("*").
    for method_name, phase in _WORKLOAD_KERNELS:
        for func in sorted(
            index.methods_by_name.get(method_name, ()),
            key=lambda f: (f.file, f.line),
        ):
            if "core" not in func.module.split("."):
                continue
            add_row("*", phase, func)

    rows.sort(
        key=lambda r: (
            -(r["score"] if r["score"] is not None else -1.0),
            -(r["host_cpu_share"] if r["host_cpu_share"] is not None else 0.0),
            -r["vectorizable"],
            r["algorithm"],
            r["phase"],
        )
    )
    for rank, row in enumerate(rows, start=1):
        row["rank"] = rank

    doc = {
        "kernel_report_version": KERNEL_REPORT_VERSION,
        "paths": list(paths),
        "host": (
            {
                "source": host_source,
                "algorithm": host_algorithm,
                "machines": job.get("machines"),
                "phase_cpu_shares": shares,
            }
            if host_doc is not None
            else None
        ),
        "rows": rows,
    }
    return doc


# -- schema --------------------------------------------------------------

_SCHEMA_TOP = (
    ("kernel_report_version", int),
    ("paths", list),
    ("rows", list),
)
_SCHEMA_ROW = (
    ("algorithm", str),
    ("phase", str),
    ("kernel", str),
    ("file", str),
    ("line", int),
    ("classification", str),
    ("vectorizable", (int, float)),
    ("loops", int),
    ("sequential_deps", list),
    ("host_cpu_share", (int, float, type(None))),
    ("score", (int, float, type(None))),
    ("rank", int),
)

_CLASSES = frozenset(VECTOR_FACTOR)


def check_kernel_report_schema(doc: dict) -> List[str]:
    """Schema-check a kernel-report document; returns error strings."""
    errors: List[str] = []
    for key, kind in _SCHEMA_TOP:
        if key not in doc:
            errors.append(f"missing top-level key: {key}")
        elif not isinstance(doc[key], kind):
            errors.append(f"{key}: expected {kind}, got {type(doc[key])}")
    if errors:
        return errors
    if doc["kernel_report_version"] != KERNEL_REPORT_VERSION:
        errors.append(
            f"kernel_report_version {doc['kernel_report_version']} != "
            f"{KERNEL_REPORT_VERSION}"
        )
    if "host" in doc and doc["host"] is not None and not isinstance(
        doc["host"], dict
    ):
        errors.append("host: expected dict or null")
    for i, row in enumerate(doc["rows"]):
        for key, kind in _SCHEMA_ROW:
            if key not in row:
                errors.append(f"rows[{i}]: missing {key}")
            elif not isinstance(row[key], kind):
                errors.append(f"rows[{i}].{key}: bad type")
        if row.get("classification") not in _CLASSES:
            errors.append(
                f"rows[{i}].classification: unknown class "
                f"{row.get('classification')!r}"
            )
    return errors


# -- rendering -----------------------------------------------------------


def format_kernel_report(doc: dict, top: int = 5) -> str:
    """Human-readable kernel worklist table."""
    lines: List[str] = []
    host = doc.get("host")
    if host is not None:
        shares = ", ".join(
            f"{phase}={share:.1%}"
            for phase, share in sorted(host["phase_cpu_shares"].items())
        )
        source = host.get("source") or "host profile"
        algo = host.get("algorithm") or "?"
        lines.append(
            f"kernel worklist (static class x host CPU share from "
            f"{source}; algorithm={algo}; {shares})"
        )
    else:
        lines.append(
            "kernel worklist (static classes only; add --host-json for "
            "measured host CPU shares and scores)"
        )
    header = (
        f"  {'rank':>4s} {'algorithm':<12s} {'phase':<8s} "
        f"{'class':<20s} {'vec':>5s} {'cpu%':>7s} {'score':>7s}  kernel"
    )
    lines.append(header)
    for row in doc["rows"]:
        share = (
            f"{row['host_cpu_share']:7.1%}"
            if row["host_cpu_share"] is not None
            else f"{'-':>7s}"
        )
        score = (
            f"{row['score']:7.3f}" if row["score"] is not None else f"{'-':>7s}"
        )
        lines.append(
            f"  {row['rank']:>4d} {row['algorithm']:<12s} "
            f"{row['phase']:<8s} {row['classification']:<20s} "
            f"{row['vectorizable']:5.2f} {share} {score}  "
            f"{row['kernel']}"
        )
    scored = [r for r in doc["rows"] if r["score"] is not None]
    if scored:
        lines.append("")
        lines.append("top vectorization targets (rank = cpu share x "
                     "vectorizability):")
        for row in scored[:top]:
            blockers = (
                f"; sequential deps: {', '.join(row['sequential_deps'])}"
                if row["sequential_deps"]
                else ""
            )
            lines.append(
                f"  {row['rank']}. {row['algorithm']}/{row['phase']} "
                f"({row['classification']}, score {row['score']:.3f})"
                f"{blockers}"
            )
    sequential = [
        r for r in doc["rows"] if r["classification"] == SEQUENTIAL
    ]
    if sequential:
        lines.append("")
        lines.append("blocked (sequential dependence; restructure first):")
        for row in sequential:
            lines.append(
                f"  {row['algorithm']}/{row['phase']} {row['kernel']} "
                f"({', '.join(row['sequential_deps']) or 'unclassified'})"
            )
    return "\n".join(lines)


def load_host_doc(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


__all__ = [
    "KERNEL_PHASES",
    "KERNEL_REPORT_VERSION",
    "build_kernel_report",
    "check_kernel_report_schema",
    "format_kernel_report",
    "gas_algorithm_classes",
    "load_host_doc",
    "phase_cpu_shares",
]

"""Whole-program (deep) analysis layer: ``check --deep``.

Structure:

* :mod:`project` — the project index: modules, functions, classes,
  imports, ``__init__`` re-exports.
* :mod:`callgraph` — call sites resolved to project targets, with
  explicit resolution kinds and reachability queries.
* :mod:`cfg` — per-function statement CFGs and path-shape helpers.
* :mod:`dataflow` — forward taint with interprocedural summaries.
* :mod:`loops` — loop-carried dependence + vectorizability classes.
* :mod:`escape` — per-machine capture/aliasing for the process backend.
* :mod:`kernels` — the static×profile kernel worklist
  (``check --kernel-report``).
* :mod:`rules` — CHX008–CHX017.
* :mod:`engine` — the cached ``check --deep`` driver.
"""

from repro.analysis.flow.callgraph import CallGraph, CallSite, build_call_graph
from repro.analysis.flow.cfg import CFG, definitely_terminates, yield_lines
from repro.analysis.flow.dataflow import FunctionSummary, SinkReport, TaintAnalysis
from repro.analysis.flow.engine import (
    DeepEngine,
    DeepResult,
    collect_focus_kinds,
    source_tree_hash,
)
from repro.analysis.flow.escape import (
    aliased_constructions,
    per_machine_classes,
    shared_mutable_globals,
    unpicklable_captures,
)
from repro.analysis.flow.kernels import (
    build_kernel_report,
    check_kernel_report_schema,
    format_kernel_report,
)
from repro.analysis.flow.loops import (
    LoopInfo,
    classify_function,
    hot_functions,
    loop_infos_in,
)
from repro.analysis.flow.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    module_name_for,
)
from repro.analysis.flow.rules import (
    ANALYZER_VERSION,
    DEEP_RULE_TABLE,
    DeepContext,
    DeepRule,
    RaceCandidate,
    collect_race_candidates,
    default_deep_rules,
)

__all__ = [
    "ANALYZER_VERSION",
    "CFG",
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "DEEP_RULE_TABLE",
    "DeepContext",
    "DeepEngine",
    "DeepResult",
    "DeepRule",
    "FunctionInfo",
    "FunctionSummary",
    "LoopInfo",
    "ModuleInfo",
    "ProjectIndex",
    "RaceCandidate",
    "SinkReport",
    "TaintAnalysis",
    "aliased_constructions",
    "build_call_graph",
    "build_kernel_report",
    "check_kernel_report_schema",
    "classify_function",
    "collect_focus_kinds",
    "collect_race_candidates",
    "default_deep_rules",
    "definitely_terminates",
    "format_kernel_report",
    "hot_functions",
    "loop_infos_in",
    "module_name_for",
    "per_machine_classes",
    "shared_mutable_globals",
    "source_tree_hash",
    "unpicklable_captures",
    "yield_lines",
]

"""Whole-program (deep) analysis layer: ``check --deep``.

Structure:

* :mod:`project` — the project index: modules, functions, classes,
  imports, ``__init__`` re-exports.
* :mod:`callgraph` — call sites resolved to project targets, with
  explicit resolution kinds and reachability queries.
* :mod:`cfg` — per-function statement CFGs and path-shape helpers.
* :mod:`dataflow` — forward taint with interprocedural summaries.
* :mod:`rules` — CHX008–CHX012.
* :mod:`engine` — the cached ``check --deep`` driver.
"""

from repro.analysis.flow.callgraph import CallGraph, CallSite, build_call_graph
from repro.analysis.flow.cfg import CFG, definitely_terminates, yield_lines
from repro.analysis.flow.dataflow import FunctionSummary, SinkReport, TaintAnalysis
from repro.analysis.flow.engine import (
    DeepEngine,
    DeepResult,
    collect_focus_kinds,
    source_tree_hash,
)
from repro.analysis.flow.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    module_name_for,
)
from repro.analysis.flow.rules import (
    DEEP_RULE_TABLE,
    DeepContext,
    DeepRule,
    RaceCandidate,
    collect_race_candidates,
    default_deep_rules,
)

__all__ = [
    "CFG",
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "DEEP_RULE_TABLE",
    "DeepContext",
    "DeepEngine",
    "DeepResult",
    "DeepRule",
    "FunctionInfo",
    "FunctionSummary",
    "ModuleInfo",
    "ProjectIndex",
    "RaceCandidate",
    "SinkReport",
    "TaintAnalysis",
    "build_call_graph",
    "collect_focus_kinds",
    "collect_race_candidates",
    "default_deep_rules",
    "definitely_terminates",
    "module_name_for",
    "source_tree_hash",
    "yield_lines",
]

"""Loop-level dependence analysis over the edge hot loops.

The vectorization arc (ROADMAP item 1) rewrites the per-edge hot path
— the ``scatter_chunk`` / ``gather_chunk`` / ``apply_partition`` bodies
and the GAS user functions — into whole-chunk numpy operations.  Before
rewriting, this module answers the two questions that decide whether a
loop *can* be vectorized:

* Does any value flow from one iteration to the next (a loop-carried
  dependence), and if so, is it a reduction (vectorizable with
  ``np.add.at``-style segmented operations) or genuinely sequential?
* Which objects allocated per iteration escape the loop (so a columnar
  rewrite must materialize them as arrays rather than drop them)?

Every ``for`` loop in a hot kernel function becomes a :class:`LoopInfo`
with a three-way classification:

``elementwise``
    No loop-carried dependence: each iteration writes only fresh
    temporaries or elements indexed by the loop variable.  Directly
    vectorizable.
``segmented-reduction``
    The only carried dependences are reduction-style (``acc += e``,
    ``acc = min(acc, e)``, ``out.append(e)``, ``hist[key] += e``).
    Vectorizable with sort/segment or ``np.ufunc.at`` machinery.
``sequential``
    At least one carried dependence is order-sensitive (a value
    computed in iteration *i* feeds iteration *i+1* through something
    other than a reduction).  Blocks vectorization outright.

The classification is deliberately conservative in the *sequential*
direction: an unrecognized write pattern demotes the loop rather than
promoting it, so CHX013 findings are the loops a columnar rewrite must
restructure first.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow.project import (
    FunctionInfo,
    ProjectIndex,
    attr_chain,
    dump_expr,
)
from repro.analysis.lint import SIM_PACKAGES

#: The edge-kernel function names the engines dispatch through: the
#: Workload streaming interface plus the GAS user functions they call.
HOT_FUNCTION_NAMES = frozenset(
    {
        "scatter_chunk",
        "gather_chunk",
        "apply_partition",
        "merge_accumulators",
        "scatter",
        "gather",
        "apply",
        "merge",
    }
)

#: Packages whose hot kernels the loop rules inspect (the simulated
#: engine packages plus the user algorithms they drive).
HOT_PACKAGES = SIM_PACKAGES | frozenset({"algorithms"})

ELEMENTWISE = "elementwise"
SEGMENTED = "segmented-reduction"
SEQUENTIAL = "sequential"

#: Classification -> vectorizability factor for the kernel worklist
#: (elementwise loops vectorize directly; segmented reductions need
#: sort/segment or ``ufunc.at`` machinery; sequential loops block).
VECTOR_FACTOR = {ELEMENTWISE: 1.0, SEGMENTED: 0.7, SEQUENTIAL: 0.0}

_SEVERITY = {ELEMENTWISE: 0, SEGMENTED: 1, SEQUENTIAL: 2}

#: Builtin calls that allocate a fresh container per call.
_ALLOCATOR_CALLS = frozenset(
    {"dict", "list", "set", "bytearray", "defaultdict", "deque", "Counter",
     "OrderedDict"}
)

#: Reduction-style container mutations (append-reductions).
_REDUCTION_METHODS = frozenset({"append", "add", "extend", "update", "insert"})

#: ``x = f(x, e)`` reduction combiners.
_REDUCTION_COMBINERS = frozenset({"min", "max"})


@dataclass(frozen=True)
class CarriedDep:
    """One loop-carried dependence: ``name`` flows across iterations."""

    name: str
    line: int
    kind: str  # "reduction" | "sequential"
    detail: str


@dataclass(frozen=True)
class Allocation:
    """One per-iteration Python object allocation inside the loop."""

    line: int
    expr: str
    escapes: bool  # stored beyond the iteration (outer container/attr)


@dataclass(frozen=True)
class HoistableAttr:
    """A loop-invariant attribute chain read repeatedly in the body."""

    line: int
    chain: str
    reads: int


@dataclass
class LoopInfo:
    """Dependence summary of one ``for`` loop in a hot kernel."""

    function: str  # enclosing function qualname
    file: str
    line: int
    targets: Tuple[str, ...]
    carried: List[CarriedDep] = field(default_factory=list)
    allocations: List[Allocation] = field(default_factory=list)
    hoistable: List[HoistableAttr] = field(default_factory=list)

    @property
    def classification(self) -> str:
        if any(dep.kind == "sequential" for dep in self.carried):
            return SEQUENTIAL
        if self.carried:
            return SEGMENTED
        return ELEMENTWISE


def is_hot_function(func: FunctionInfo) -> bool:
    """Whether ``func`` is an edge kernel the loop rules inspect."""
    if func.name not in HOT_FUNCTION_NAMES:
        return False
    return any(part in HOT_PACKAGES for part in func.module.split("."))


def hot_functions(index: ProjectIndex) -> List[FunctionInfo]:
    return sorted(
        (f for f in index.iter_functions() if is_hot_function(f)),
        key=lambda f: (f.file, f.line),
    )


# ---------------------------------------------------------------------------
# per-loop analysis
# ---------------------------------------------------------------------------


def _target_names(target: ast.expr) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _names_read(node: ast.AST) -> Iterator[Tuple[str, int]]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            yield sub.id, sub.lineno


def _is_reduction_rhs(name: str, value: ast.expr) -> bool:
    """``name = <value>`` where value folds name with new data."""
    if isinstance(value, ast.BinOp):
        return any(
            isinstance(side, ast.Name) and side.id == name
            for side in (value.left, value.right)
        )
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        if value.func.id in _REDUCTION_COMBINERS:
            return any(
                isinstance(arg, ast.Name) and arg.id == name
                for arg in value.args
            )
    return False


def _index_is_loop_local(index_expr: ast.expr, distinct_vars: Set[str]) -> bool:
    """Whether a subscript index is derived purely from *injective* loop
    variables (a distinct element per iteration: an elementwise write).

    Only counters are injective — ``for i in range(n)`` and the first
    target of ``for i, e in enumerate(xs)``.  Data unpacked from the
    iterable (``for src, dst in edges``) can repeat, so ``out[dst]``
    stays a data-dependent destination."""
    names = {name for name, _line in _names_read(index_expr)}
    return bool(names) and names <= distinct_vars


def _distinct_loop_vars(loop: ast.For) -> Set[str]:
    """The loop targets guaranteed distinct per iteration."""
    it = loop.iter
    if isinstance(it, ast.Call) and isinstance(it.func, ast.Name):
        if it.func.id == "range":
            return _target_names(loop.target)
        if it.func.id == "enumerate":
            if isinstance(loop.target, (ast.Tuple, ast.List)) and (
                loop.target.elts
            ):
                return _target_names(loop.target.elts[0])
    return set()


class _LoopWalker:
    """Linear scan of one loop body collecting dependence evidence.

    Statements are visited in source order (descending into nested
    if/try/with — and nested loops, whose effects are also the outer
    loop's effects).  Nested function definitions are separate scopes
    and are skipped.
    """

    def __init__(
        self,
        loop_vars: Set[str],
        distinct_vars: Set[str],
        class_resolver: Optional[Callable[[ast.Call], bool]] = None,
    ):
        self.loop_vars = loop_vars
        self.distinct_vars = distinct_vars
        self.class_resolver = class_resolver
        self.carried: Dict[str, CarriedDep] = {}
        self.allocations: List[Allocation] = []
        #: first body-order event per name: "read" or "write".
        self._first_event: Dict[str, str] = {}
        self._written: Set[str] = set()
        self._attr_reads: Dict[str, List[int]] = {}
        self._attr_written: Set[str] = set()

    # -- events ---------------------------------------------------------

    def _read(self, node: ast.AST) -> None:
        for name, _line in _names_read(node):
            self._first_event.setdefault(name, "read")
        self._collect_attr_reads(node)
        self._collect_allocations(node)

    def _write_name(self, name: str) -> None:
        self._first_event.setdefault(name, "write")
        self._written.add(name)

    def _carry(self, name: str, line: int, kind: str, detail: str) -> None:
        if name in self.loop_vars:
            return
        existing = self.carried.get(name)
        if existing is None or (
            existing.kind == "reduction" and kind == "sequential"
        ):
            self.carried[name] = CarriedDep(name, line, kind, detail)

    # -- statement walk -------------------------------------------------

    def walk(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt)
        # A name whose first body-order event is a read but which the
        # body also writes sees the *previous* iteration's value: a
        # carried dependence that is not a recognized reduction.
        for name in sorted(self._written):
            if name in self.loop_vars or name in self.carried:
                continue
            if self._first_event.get(name) == "read":
                self._carry(
                    name,
                    0,
                    "sequential",
                    f"'{name}' is read before it is rewritten each iteration",
                )

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # separate scope
        if isinstance(stmt, ast.Assign):
            self._read(stmt.value)
            for target in stmt.targets:
                self._handle_assign_target(target, stmt.value, stmt.lineno)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._read(stmt.value)
                self._handle_assign_target(stmt.target, stmt.value, stmt.lineno)
            return
        if isinstance(stmt, ast.AugAssign):
            self._read(stmt.value)
            self._handle_aug_target(stmt, stmt.lineno)
            return
        if isinstance(stmt, ast.Expr):
            self._handle_expr_stmt(stmt)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._read(stmt.iter)
            inner_vars = _target_names(stmt.target)
            for name in inner_vars:
                self._write_name(name)
            # The nested loop's body effects are the outer body's too,
            # with the inner loop variable additionally loop-local.
            saved = self.loop_vars
            saved_distinct = self.distinct_vars
            self.loop_vars = saved | inner_vars
            if isinstance(stmt, ast.For):
                self.distinct_vars = saved_distinct | _distinct_loop_vars(stmt)
            self.walk(stmt.body)
            self.walk(stmt.orelse)
            self.loop_vars = saved
            self.distinct_vars = saved_distinct
            return
        if isinstance(stmt, ast.While):
            self._read(stmt.test)
            self.walk(stmt.body)
            self.walk(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self._read(stmt.test)
            self.walk(stmt.body)
            self.walk(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._read(item.context_expr)
                if item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        self._write_name(name)
            self.walk(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self.walk(stmt.body)
            for handler in stmt.handlers:
                self.walk(handler.body)
            self.walk(stmt.orelse)
            self.walk(stmt.finalbody)
            return
        # return/raise/delete/assert/… : reads only.
        self._read(stmt)

    # -- assignment patterns --------------------------------------------

    def _handle_assign_target(
        self, target: ast.expr, value: ast.expr, line: int
    ) -> None:
        if isinstance(target, ast.Name):
            if _is_reduction_rhs(target.id, value):
                self._carry(
                    target.id,
                    line,
                    "reduction",
                    f"'{target.id}' folds itself each iteration",
                )
            elif any(name == target.id for name, _l in _names_read(value)):
                self._carry(
                    target.id,
                    line,
                    "sequential",
                    f"'{target.id}' is recomputed from its previous value",
                )
            self._write_name(target.id)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._handle_assign_target(elt, value, line)
            return
        if isinstance(target, ast.Subscript):
            self._read(target.value)
            self._read(target.slice)
            base = attr_chain(target.value)
            base_text = ".".join(base) if base else dump_expr(target.value)
            if _index_is_loop_local(target.slice, self.distinct_vars):
                return  # out[i] = …: a distinct element per iteration
            self._carry(
                base_text,
                line,
                "sequential",
                f"'{base_text}[…]' is written at a data-dependent index; "
                f"repeated destinations make the result order-sensitive",
            )
            return
        if isinstance(target, ast.Attribute):
            self._read(target.value)
            chain = attr_chain(target)
            chain_text = ".".join(chain) if chain else dump_expr(target)
            self._attr_written.add(chain_text)
            self._carry(
                chain_text,
                line,
                "sequential",
                f"'{chain_text}' carries state across iterations",
            )

    def _handle_aug_target(self, stmt: ast.AugAssign, line: int) -> None:
        target = stmt.target
        if isinstance(target, ast.Name):
            self._carry(
                target.id,
                line,
                "reduction",
                f"'{target.id}' accumulates across iterations",
            )
            self._write_name(target.id)
            return
        if isinstance(target, ast.Subscript):
            self._read(target.value)
            self._read(target.slice)
            base = attr_chain(target.value)
            base_text = ".".join(base) if base else dump_expr(target.value)
            if _index_is_loop_local(target.slice, self.distinct_vars):
                return
            self._carry(
                base_text,
                line,
                "reduction",
                f"'{base_text}[…]' accumulates at a data-dependent index "
                f"(segmented reduction)",
            )
            return
        if isinstance(target, ast.Attribute):
            self._read(target.value)
            chain = attr_chain(target)
            chain_text = ".".join(chain) if chain else dump_expr(target)
            self._attr_written.add(chain_text)
            self._carry(
                chain_text,
                line,
                "reduction",
                f"'{chain_text}' accumulates across iterations",
            )

    def _handle_expr_stmt(self, stmt: ast.Expr) -> None:
        call = stmt.value
        if isinstance(call, ast.Call):
            chain = attr_chain(call.func)
            if chain is not None and len(chain) >= 2 and (
                chain[-1] in _REDUCTION_METHODS
            ):
                receiver = ".".join(chain[:-1])
                if chain[0] not in self.loop_vars:
                    self._carry(
                        receiver,
                        stmt.lineno,
                        "reduction",
                        f"'{receiver}.{chain[-1]}(…)' grows a container "
                        f"across iterations",
                    )
                for arg in call.args:
                    self._read(arg)
                for kw in call.keywords:
                    self._read(kw.value)
                self._collect_attr_reads(call.func)
                return
        self._read(stmt.value)

    # -- allocations and attribute reads --------------------------------

    def _collect_allocations(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            alloc = self._allocation_of(sub)
            if alloc is not None:
                self.allocations.append(alloc)

    def _allocation_of(self, node: ast.AST) -> Optional[Allocation]:
        if isinstance(node, (ast.Dict, ast.Set)) or isinstance(node, ast.List):
            return Allocation(node.lineno, dump_expr(node), escapes=False)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            return Allocation(node.lineno, dump_expr(node), escapes=False)
        if isinstance(node, ast.Call):
            chain = attr_chain(node.func)
            if chain is not None and len(chain) == 1 and (
                chain[0] in _ALLOCATOR_CALLS
            ):
                return Allocation(node.lineno, dump_expr(node), escapes=False)
            if (
                chain is not None
                and self.class_resolver is not None
                and self.class_resolver(node)
            ):
                return Allocation(node.lineno, dump_expr(node), escapes=False)
        return None

    def _collect_attr_reads(self, node: ast.AST) -> None:
        stack: List[ast.AST] = [node]
        while stack:
            sub = stack.pop()
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(sub, ast.Attribute) and isinstance(sub.ctx, ast.Load):
                chain = attr_chain(sub)
                if chain is not None and len(chain) >= 3:
                    self._attr_reads.setdefault(".".join(chain), []).append(
                        sub.lineno
                    )
                    # Only the maximal chain counts; descend past the
                    # attribute spine into call args / subscripts.
                    inner = sub
                    while isinstance(inner, ast.Attribute):
                        inner = inner.value
                    stack.append(inner)
                    continue
            stack.extend(ast.iter_child_nodes(sub))

    def hoistable(self) -> List[HoistableAttr]:
        out: List[HoistableAttr] = []
        for chain_text, lines in sorted(self._attr_reads.items()):
            if len(lines) < 2:
                continue
            root = chain_text.split(".")[0]
            if root in self.loop_vars or root in self._written:
                continue
            if any(
                written == chain_text or written.startswith(chain_text + ".")
                or chain_text.startswith(written + ".")
                for written in self._attr_written
            ):
                continue
            out.append(HoistableAttr(min(lines), chain_text, len(lines)))
        return out


def _mark_escapes(loop: ast.For, walker: _LoopWalker) -> List[Allocation]:
    """Second pass: which per-iteration allocations escape the loop?

    An allocation escapes when it is stored somewhere that outlives the
    iteration: passed to an outer container's grow method, assigned
    into a subscript/attribute, yielded, or returned.
    """
    escaping_lines: Set[int] = set()
    for stmt in ast.walk(loop):
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            chain = attr_chain(stmt.value.func)
            if chain is not None and len(chain) >= 2 and (
                chain[-1] in _REDUCTION_METHODS
            ):
                for arg in stmt.value.args:
                    for sub in ast.walk(arg):
                        escaping_lines.add(getattr(sub, "lineno", 0))
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)) and (
            getattr(stmt, "value", None) is not None
        ):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            if any(
                isinstance(t, (ast.Subscript, ast.Attribute)) for t in targets
            ):
                for sub in ast.walk(stmt.value):
                    escaping_lines.add(getattr(sub, "lineno", 0))
        if isinstance(stmt, (ast.Return, ast.Yield, ast.YieldFrom)) and (
            getattr(stmt, "value", None) is not None
        ):
            for sub in ast.walk(stmt.value):
                escaping_lines.add(getattr(sub, "lineno", 0))
    # Names bound to allocations that later feed an escape site also
    # escape; approximate by line: an allocation on a line that feeds
    # an escaping expression is marked directly above, so here we only
    # rewrite the flags.
    return [
        Allocation(a.line, a.expr, escapes=a.line in escaping_lines)
        for a in walker.allocations
    ]


def loop_infos_in(
    func: FunctionInfo,
    class_resolver: Optional[Callable[[ast.Call], bool]] = None,
) -> List[LoopInfo]:
    """Analyze every ``for`` loop in ``func`` (nested loops included)."""
    infos: List[LoopInfo] = []
    for node in ast.walk(func.node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
            node is not func.node
        ):
            continue
        if not isinstance(node, ast.For):
            continue
        loop_vars = _target_names(node.target)
        walker = _LoopWalker(
            loop_vars,
            _distinct_loop_vars(node),
            class_resolver=class_resolver,
        )
        walker.walk(node.body)
        infos.append(
            LoopInfo(
                function=func.qualname,
                file=func.file,
                line=node.lineno,
                targets=tuple(sorted(loop_vars)),
                carried=sorted(
                    walker.carried.values(), key=lambda d: (d.line, d.name)
                ),
                allocations=_mark_escapes(node, walker),
                hoistable=walker.hoistable(),
            )
        )
    infos.sort(key=lambda info: info.line)
    return infos


def classify_function(
    func: FunctionInfo,
    class_resolver: Optional[Callable[[ast.Call], bool]] = None,
) -> Tuple[str, List[LoopInfo]]:
    """Worst-loop classification of a kernel body.

    A body with no Python loops at all is ``elementwise`` — it is
    already straight-line (typically whole-array numpy) code.
    """
    infos = loop_infos_in(func, class_resolver=class_resolver)
    if not infos:
        return ELEMENTWISE, infos
    worst = max(infos, key=lambda info: _SEVERITY[info.classification])
    return worst.classification, infos


__all__ = [
    "Allocation",
    "CarriedDep",
    "ELEMENTWISE",
    "HOT_FUNCTION_NAMES",
    "HOT_PACKAGES",
    "HoistableAttr",
    "LoopInfo",
    "SEGMENTED",
    "SEQUENTIAL",
    "VECTOR_FACTOR",
    "classify_function",
    "hot_functions",
    "is_hot_function",
    "loop_infos_in",
]

"""Whole-program index: modules, functions, classes, imports, re-exports.

The :class:`ProjectIndex` is the substrate every interprocedural (deep)
rule stands on.  It parses each file once and records

* a module table keyed by dotted module name (derived from the package
  layout on disk: ancestors holding an ``__init__.py``),
* every function and method with a project-unique qualified name
  (``repro.sim.engine.Simulator.process``), its AST node, and whether
  it is a generator (a simulator process),
* every class with its method table and (project-resolvable) bases,
* per-module import bindings, including ``from pkg import name``
  re-exports through ``__init__`` modules, chased transitively so that
  ``repro.sim.Simulator`` resolves to ``repro.sim.engine.Simulator``.

Resolution is deliberately an *over-approximation*: a method call on a
receiver of unknown type resolves to every project method of that name
("by-name" resolution).  For call-graph reachability questions — "can
this function reach a barrier wait?" — over-approximating keeps the
deep rules sound (no missed protocol edge), at the price of extra
edges, which the rules tolerate by design.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

#: Names that resolve to the Python builtin namespace (not project code).
BUILTIN_NAMES = frozenset(dir(builtins))


def _is_generator(func: ast.AST) -> bool:
    """Yield/YieldFrom in the function's own body (not nested defs)."""
    stack = list(getattr(func, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # separate scope
        stack.extend(ast.iter_child_nodes(node))
    return False


def attr_chain(node: ast.AST) -> Optional[List[str]]:
    """Dotted-name chain of an Attribute/Name expression, or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str  # module-qualified: pkg.mod.Class.meth / pkg.mod.fn
    module: str
    name: str
    node: ast.AST  # FunctionDef / AsyncFunctionDef
    file: str
    is_generator: bool
    class_name: Optional[str] = None  # enclosing class, if a method
    decorators: List[str] = field(default_factory=list)

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class definition: method table plus resolvable base names."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    file: str
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Base-class expressions as dotted chains (resolved lazily).
    base_chains: List[List[str]] = field(default_factory=list)


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str  # dotted module name
    file: str
    tree: ast.Module
    source: str
    #: local binding -> dotted target ("np" -> "numpy",
    #: "Simulator" -> "repro.sim.engine.Simulator").
    imports: Dict[str, str] = field(default_factory=dict)
    #: wildcard-import source modules (``from x import *``).
    star_imports: List[str] = field(default_factory=list)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


def module_name_for(path: Path) -> str:
    """Dotted module name from the package layout on disk.

    Climbs ancestors while they contain an ``__init__.py``; a file in a
    plain directory is a top-level module of its stem.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    if not parts:  # an __init__.py directly in a non-package dir
        parts = [path.parent.name]
    return ".".join(parts)


class ProjectIndex:
    """Parsed view of every module under the analyzed paths."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: qualname -> FunctionInfo for every function and method.
        self.functions: Dict[str, FunctionInfo] = {}
        #: qualname -> ClassInfo.
        self.classes: Dict[str, ClassInfo] = {}
        #: method name -> [FunctionInfo] (for by-name resolution).
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        #: plain function name -> [FunctionInfo].
        self.functions_by_name: Dict[str, List[FunctionInfo]] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, paths: Iterable[str]) -> "ProjectIndex":
        """Index every ``*.py`` under each path (files or directories)."""
        index = cls()
        for entry in paths:
            root = Path(entry)
            if root.is_dir():
                files: Sequence[Path] = sorted(
                    p for p in root.rglob("*.py") if "__pycache__" not in p.parts
                )
            else:
                files = [root]
            for file_path in files:
                index.add_file(file_path)
        index._link()
        return index

    def add_file(self, path: Path) -> Optional[ModuleInfo]:
        source = Path(path).read_text(encoding="utf-8")
        return self.add_source(source, path=str(path))

    def add_source(self, source: str, path: str) -> Optional[ModuleInfo]:
        """Index one source unit; returns None on syntax errors (the
        plain lint engine already reports those as CHX000)."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            return None
        name = module_name_for(Path(path)) if Path(path).exists() else (
            Path(path).stem
        )
        module = ModuleInfo(name=name, file=path, tree=tree, source=source)
        self._collect_imports(module)
        self._collect_defs(module)
        self.modules[name] = module
        return module

    def _collect_imports(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    module.imports[bound] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:  # relative import
                    parts = module.name.split(".")
                    # level 1 = current package; an __init__ module's own
                    # name *is* the package.
                    if not module.file.endswith("__init__.py"):
                        parts = parts[:-1]
                    cut = node.level - 1
                    if cut:
                        parts = parts[:-cut] if cut < len(parts) else []
                    prefix = ".".join(parts)
                    base = f"{prefix}.{base}" if base else prefix
                for alias in node.names:
                    if alias.name == "*":
                        module.star_imports.append(base)
                        continue
                    bound = alias.asname or alias.name
                    module.imports[bound] = f"{base}.{alias.name}" if base else alias.name

    def _collect_defs(self, module: ModuleInfo) -> None:
        def visit_function(node, class_info: Optional[ClassInfo]) -> None:
            if class_info is not None:
                qual = f"{class_info.qualname}.{node.name}"
            else:
                qual = f"{module.name}.{node.name}"
            info = FunctionInfo(
                qualname=qual,
                module=module.name,
                name=node.name,
                node=node,
                file=module.file,
                is_generator=_is_generator(node),
                class_name=class_info.name if class_info else None,
                decorators=[
                    ".".join(chain)
                    for d in node.decorator_list
                    if (chain := attr_chain(d.func if isinstance(d, ast.Call) else d))
                ],
            )
            if class_info is not None:
                class_info.methods[node.name] = info
            else:
                module.functions[node.name] = info

        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit_function(node, None)
            elif isinstance(node, ast.ClassDef):
                cls_info = ClassInfo(
                    qualname=f"{module.name}.{node.name}",
                    module=module.name,
                    name=node.name,
                    node=node,
                    file=module.file,
                    base_chains=[
                        chain for b in node.bases if (chain := attr_chain(b))
                    ],
                )
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        visit_function(child, cls_info)
                module.classes[node.name] = cls_info

    def _link(self) -> None:
        """Populate the global tables once every module is parsed."""
        self.functions.clear()
        self.classes.clear()
        self.methods_by_name.clear()
        self.functions_by_name.clear()
        for module in self.modules.values():
            for fn in module.functions.values():
                self.functions[fn.qualname] = fn
                self.functions_by_name.setdefault(fn.name, []).append(fn)
            for cls_info in module.classes.values():
                self.classes[cls_info.qualname] = cls_info
                for meth in cls_info.methods.values():
                    self.functions[meth.qualname] = meth
                    self.methods_by_name.setdefault(meth.name, []).append(meth)

    # -- resolution -----------------------------------------------------

    def resolve_dotted(
        self, dotted: str, _seen: Optional[frozenset] = None
    ) -> Optional[object]:
        """Resolve a fully dotted path to a ModuleInfo / ClassInfo /
        FunctionInfo, chasing ``__init__`` re-exports."""
        if _seen is None:
            _seen = frozenset()
        if dotted in _seen:
            return None
        _seen = _seen | {dotted}
        if dotted in self.modules:
            return self.modules[dotted]
        if dotted in self.functions:
            return self.functions[dotted]
        if dotted in self.classes:
            cls_info = self.classes[dotted]
            return cls_info
        # Split into (module prefix, remainder) at the longest known module.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix not in self.modules:
                continue
            module = self.modules[prefix]
            rest = parts[cut:]
            return self._resolve_in_module(module, rest, _seen)
        return None

    def _resolve_in_module(
        self, module: ModuleInfo, rest: List[str], _seen: frozenset
    ) -> Optional[object]:
        if not rest:
            return module
        head, tail = rest[0], rest[1:]
        if head in module.functions and not tail:
            return module.functions[head]
        if head in module.classes:
            cls_info = module.classes[head]
            if not tail:
                return cls_info
            if len(tail) == 1:
                return self.resolve_method(cls_info, tail[0])
            return None
        if head in module.imports:  # re-export (__init__ pattern)
            target = module.imports[head]
            return self.resolve_dotted(".".join([target] + tail), _seen)
        for star_source in module.star_imports:
            found = self.resolve_dotted(
                ".".join([star_source, head] + tail), _seen
            )
            if found is not None:
                return found
        return None

    def resolve_method(
        self, cls_info: ClassInfo, name: str, _seen: Optional[frozenset] = None
    ) -> Optional[FunctionInfo]:
        """Look ``name`` up on a class, then its project-resolvable MRO."""
        if _seen is None:
            _seen = frozenset()
        if cls_info.qualname in _seen:
            return None
        _seen = _seen | {cls_info.qualname}
        if name in cls_info.methods:
            return cls_info.methods[name]
        module = self.modules.get(cls_info.module)
        for chain in cls_info.base_chains:
            base = None
            if module is not None:
                base = self.resolve_chain_in(module, chain, class_ctx=None)
            if isinstance(base, ClassInfo):
                found = self.resolve_method(base, name, _seen)
                if found is not None:
                    return found
        return None

    def resolve_chain_in(
        self,
        module: ModuleInfo,
        chain: List[str],
        class_ctx: Optional[ClassInfo] = None,
    ) -> Optional[object]:
        """Resolve a dotted chain as written in ``module``'s namespace.

        ``class_ctx`` enables ``self.method`` / ``cls.method`` lookup.
        Returns ModuleInfo / ClassInfo / FunctionInfo, or None.
        """
        if not chain:
            return None
        head = chain[0]
        if head in ("self", "cls") and class_ctx is not None and len(chain) >= 2:
            if len(chain) == 2:
                return self.resolve_method(class_ctx, chain[1])
            return None  # self.attr.meth: receiver type unknown
        if head in module.functions and len(chain) == 1:
            return module.functions[head]
        if head in module.classes:
            cls_info = module.classes[head]
            if len(chain) == 1:
                return cls_info
            if len(chain) == 2:
                return self.resolve_method(cls_info, chain[1])
            return None
        if head in module.imports:
            dotted = ".".join([module.imports[head]] + chain[1:])
            return self.resolve_dotted(dotted)
        for star_source in module.star_imports:
            found = self.resolve_dotted(".".join([star_source] + chain))
            if found is not None:
                return found
        return None

    # -- convenience ----------------------------------------------------

    def iter_functions(self) -> Iterable[FunctionInfo]:
        return self.functions.values()

    def source_of(self, file: str) -> Optional[str]:
        for module in self.modules.values():
            if module.file == file:
                return module.source
        return None

    def generator_functions(self) -> Dict[str, FunctionInfo]:
        return {
            qual: fn for qual, fn in self.functions.items() if fn.is_generator
        }


def enclosing_class_of(
    module: ModuleInfo, func: FunctionInfo
) -> Optional[ClassInfo]:
    if func.class_name is None:
        return None
    return module.classes.get(func.class_name)


def parse_constant_int(node: ast.AST) -> Optional[int]:
    """The int value of a literal (or unary-minus literal), else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int) and not (
        isinstance(node.value, bool)
    ):
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, int)
    ):
        return -node.operand.value
    return None


def dump_expr(node: ast.AST, limit: int = 60) -> str:
    """Compact source-ish rendering of an expression for messages."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - very old ASTs only
        text = ast.dump(node)
    return text if len(text) <= limit else text[: limit - 3] + "..."


__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "attr_chain",
    "dump_expr",
    "enclosing_class_of",
    "module_name_for",
    "parse_constant_int",
]

"""Forward dataflow / taint framework with function summaries.

The framework answers one question interprocedurally: *can a
host-nondeterministic value (wall clock, host RNG, host object
identity) reach simulated state?*  Locally, CHX001/CHX002 catch the
source expression — but only when source and sink share a line of the
same sim-package file.  A value laundered through a helper in
``graph/`` or ``perf/`` and then passed into a sim-package call was
invisible.  This module closes that hole.

Mechanics:

* **Taint labels** — ``wall-clock``, ``host-rng``, ``host-id`` — attach
  to expressions whose value derives from a source call (``time.time``,
  ``random.random``, ``id(...)``, …).  Import aliases are canonicalized
  through the module's import table, so ``from time import monotonic``
  and ``import numpy as np; np.random.rand()`` both match.
* **Abstract interpretation** of each function body: an environment
  maps local names (and ``self.x`` chains) to taint sets; branches
  merge by union; loop bodies run twice to propagate loop-carried
  taint.  Deliberately flow-insensitive about containers.
* **Summaries** — per function: which taints its return value carries,
  which of its *parameters* flow to its return, and which parameters
  flow (possibly transitively) into a sim-package sink.  Summaries are
  iterated to a fixpoint over the whole project, so a chain
  ``a() -> b() -> c()`` of any depth is tracked.
* **Sinks** — arguments of calls that resolve (``direct`` or
  ``self-method``) into a sim-package function, and attribute stores
  on sim-package classes.

The reporting pass emits a :class:`SinkReport` per (line, label,
callee) — CHX008 turns these into findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.analysis.flow.callgraph import CallGraph, CallSite
from repro.analysis.flow.project import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    attr_chain,
)

#: A taint element: a concrete label or ("param", index).
Taint = Union[str, Tuple[str, int]]
TaintSet = FrozenSet[Taint]

EMPTY: TaintSet = frozenset()

#: Concrete labels (everything that is not a param placeholder).
LABELS = ("wall-clock", "host-rng", "host-id")

#: Canonical dotted names that *produce* each label when called.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.monotonic",
        "time.perf_counter",
        "time.process_time",
        "time.time_ns",
        "time.monotonic_ns",
        "time.perf_counter_ns",
        "time.process_time_ns",
    }
)
#: Suffixes (last two components) that read the host calendar clock.
WALL_CLOCK_SUFFIXES = frozenset(
    {("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"), ("date", "today")}
)
HOST_RNG_PREFIXES = ("random.", "numpy.random.", "secrets.")
HOST_RNG_CALLS = frozenset(
    {"os.urandom", "uuid.uuid1", "uuid.uuid4", "random.SystemRandom"}
)
HOST_ID_CALLS = frozenset({"os.getpid", "os.getppid"})

#: RNG *factories* are deterministic when seeded — the repo's approved
#: pattern is ``random.Random(config.seed ...)``.  They taint only when
#: called with no arguments (falling back to OS entropy).
RNG_FACTORY_CALLS = frozenset(
    {"random.Random", "numpy.random.default_rng", "numpy.random.RandomState"}
)

#: Cap on by-name callee fan-out considered for summary propagation.
_BY_NAME_CAP = 8

#: Summary fixpoint pass bound (project call chains are shallow; the
#: bound only guards against pathological recursion).
_MAX_PASSES = 6


def source_label(canonical: str) -> Optional[str]:
    """The taint label produced by calling ``canonical``, if any."""
    if canonical in RNG_FACTORY_CALLS:
        return None  # tainted only when unseeded; decided at the call site
    if canonical in WALL_CLOCK_CALLS:
        return "wall-clock"
    parts = tuple(canonical.split("."))
    if len(parts) >= 2 and parts[-2:] in WALL_CLOCK_SUFFIXES:
        return "wall-clock"
    if canonical in HOST_RNG_CALLS or any(
        canonical.startswith(p) for p in HOST_RNG_PREFIXES
    ):
        return "host-rng"
    if canonical == "id":
        return "host-id"
    if canonical in HOST_ID_CALLS:
        return "host-id"
    return None


def labels_of(taints: TaintSet) -> Set[str]:
    return {t for t in taints if isinstance(t, str)}


def params_of(taints: TaintSet) -> Set[int]:
    return {t[1] for t in taints if isinstance(t, tuple)}


@dataclass
class SinkReport:
    """A tainted value reaching sim-package state."""

    file: str
    line: int
    label: str
    caller: str  # qualname of the function containing the sink
    sink: str  # qualname of the sim-package callee / attribute stored
    via: Optional[str] = None  # intermediate callee for summary-derived sinks

    def message(self) -> str:
        path = f" via {self.via}" if self.via else ""
        return (
            f"{self.label}-tainted value flows into simulated state: "
            f"{self.sink}{path}"
        )


@dataclass
class FunctionSummary:
    """Interprocedural effect of one function."""

    #: Taints carried by the return value (labels + param placeholders).
    returns: TaintSet = EMPTY
    #: Param index -> sim-package sinks a tainted argument would reach.
    param_sinks: Dict[int, List[str]] = field(default_factory=dict)

    def same_as(self, other: "FunctionSummary") -> bool:
        return self.returns == other.returns and {
            k: set(v) for k, v in self.param_sinks.items()
        } == {k: set(v) for k, v in other.param_sinks.items()}


class TaintAnalysis:
    """Whole-program taint: fixpoint summaries, then a reporting pass."""

    def __init__(
        self,
        index: ProjectIndex,
        graph: CallGraph,
        sim_packages: FrozenSet[str],
    ):
        self.index = index
        self.graph = graph
        self.sim_packages = sim_packages
        self.summaries: Dict[str, FunctionSummary] = {}
        #: id(ast.Call) -> CallSite, for O(1) resolution during interp.
        self._site_of: Dict[int, CallSite] = {}
        for sites in graph.sites.values():
            for site in sites:
                self._site_of[id(site.node)] = site

    # -- public API -----------------------------------------------------

    def run(self) -> List[SinkReport]:
        """Fixpoint the summaries, then collect sink reports."""
        functions = list(self.index.iter_functions())
        for _ in range(_MAX_PASSES):
            changed = False
            for func in functions:
                interp = _Interp(self, func, reporting=False)
                summary = interp.summarize()
                previous = self.summaries.get(func.qualname)
                if previous is None or not summary.same_as(previous):
                    self.summaries[func.qualname] = summary
                    changed = True
            if not changed:
                break
        reports: List[SinkReport] = []
        for func in functions:
            interp = _Interp(self, func, reporting=True)
            interp.summarize()
            reports.extend(interp.reports)
        # Deterministic order, dedup identical reports.
        unique = {
            (r.file, r.line, r.label, r.sink, r.via): r for r in reports
        }
        return sorted(
            unique.values(), key=lambda r: (r.file, r.line, r.label, r.sink)
        )

    def is_sim_function(self, qualname: str) -> bool:
        func = self.index.functions.get(qualname)
        if func is None:
            return False
        return self.module_is_sim(func.module)

    def module_is_sim(self, module_name: str) -> bool:
        parts = module_name.split(".")
        if "analysis" in parts and "flow" in parts:
            # The flow layer itself is host-side static tooling: it runs
            # offline on real ASTs, never under the simulated clock, and
            # uses id() only as in-process dict keys.
            return False
        return any(part in self.sim_packages for part in parts)


class _Interp:
    """Abstract interpretation of one function body."""

    def __init__(self, analysis: TaintAnalysis, func: FunctionInfo, reporting: bool):
        self.analysis = analysis
        self.func = func
        self.module: Optional[ModuleInfo] = analysis.index.modules.get(func.module)
        self.reporting = reporting
        self.env: Dict[str, TaintSet] = {}
        self.returns: TaintSet = EMPTY
        self.param_sinks: Dict[int, Set[str]] = {}
        self.reports: List[SinkReport] = []
        self._param_names: List[str] = []

    # -- driver ---------------------------------------------------------

    def summarize(self) -> FunctionSummary:
        args = self.func.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        self._param_names = names
        for idx, name in enumerate(names):
            self.env[name] = frozenset({("param", idx)})
        self.exec_stmts(self.func.node.body)
        return FunctionSummary(
            returns=self.returns,
            param_sinks={k: sorted(v) for k, v in self.param_sinks.items()},
        )

    # -- statements -----------------------------------------------------

    def exec_stmts(self, statements) -> None:
        for stmt in statements:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taints = self.eval_expr(stmt.value)
            for target in stmt.targets:
                self.assign(target, taints)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.assign(stmt.target, self.eval_expr(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taints = self.eval_expr(stmt.value)
            chain = attr_chain(stmt.target)
            if chain is not None:
                key = ".".join(chain)
                self.env[key] = self.env.get(key, EMPTY) | taints
        elif isinstance(stmt, ast.Expr):
            self.eval_expr(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns |= self.eval_expr(stmt.value)
        elif isinstance(stmt, ast.If):
            self.eval_expr(stmt.test)
            before = dict(self.env)
            self.exec_stmts(stmt.body)
            then_env = self.env
            self.env = dict(before)
            self.exec_stmts(stmt.orelse)
            self.env = _merge(then_env, self.env)
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            if isinstance(stmt, ast.While):
                self.eval_expr(stmt.test)
            else:
                iter_taint = self.eval_expr(stmt.iter)
                self.assign(stmt.target, iter_taint)
            before = dict(self.env)
            # Two passes propagate loop-carried taint to a fixpoint for
            # the union domain.
            self.exec_stmts(stmt.body)
            self.exec_stmts(stmt.body)
            self.env = _merge(before, self.env)
            self.exec_stmts(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self.eval_expr(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, taints)
            self.exec_stmts(stmt.body)
        elif isinstance(stmt, ast.Try):
            before = dict(self.env)
            self.exec_stmts(stmt.body)
            after_body = dict(self.env)
            merged = _merge(before, after_body)
            for handler in stmt.handlers:
                self.env = dict(merged)
                self.exec_stmts(handler.body)
                merged = _merge(merged, self.env)
            self.env = _merge(merged, after_body)
            self.exec_stmts(stmt.orelse)
            self.exec_stmts(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval_expr(child)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # separate scope; indexed and analyzed on its own
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval_expr(child)

    def assign(self, target: ast.expr, taints: TaintSet) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.assign(element, taints)
            return
        if isinstance(target, ast.Starred):
            self.assign(target.value, taints)
            return
        chain = attr_chain(target)
        if chain is None:
            return
        self.env[".".join(chain)] = taints
        # Storing into instance state of a sim-package class is a sink.
        if (
            len(chain) >= 2
            and chain[0] == "self"
            and self.analysis.module_is_sim(self.func.module)
        ):
            self._record_sink(
                taints,
                line=target.lineno,
                sink=f"{self.func.qualname.rsplit('.', 1)[0]}.{'.'.join(chain[1:])}",
                via=None,
            )

    # -- expressions ----------------------------------------------------

    def eval_expr(self, node: ast.expr) -> TaintSet:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, EMPTY)
        if isinstance(node, ast.Constant):
            return EMPTY
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, ast.Attribute):
            chain = attr_chain(node)
            if chain is not None:
                key = ".".join(chain)
                if key in self.env:
                    return self.env[key]
            return self.eval_expr(node.value)
        if isinstance(node, (ast.Yield,)):
            if node.value is not None:
                self.eval_expr(node.value)
            return EMPTY  # value comes back from the scheduler, untainted
        if isinstance(node, ast.YieldFrom):
            # Delegation: the result is the sub-generator's return value.
            return self.eval_expr(node.value)
        if isinstance(node, ast.Lambda):
            return EMPTY
        # Everything else: union over child expressions.
        taints: TaintSet = EMPTY
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                taints |= self.eval_expr(child)
            elif isinstance(child, ast.comprehension):
                taints |= self.eval_expr(child.iter)
                for cond in child.ifs:
                    taints |= self.eval_expr(cond)
        return taints

    def eval_call(self, node: ast.Call) -> TaintSet:
        arg_taints: List[TaintSet] = [self.eval_expr(a) for a in node.args]
        kw_taints: Dict[str, TaintSet] = {
            kw.arg: self.eval_expr(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
        star_taint: TaintSet = EMPTY
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                star_taint |= self.eval_expr(arg.value)
        for kw in node.keywords:
            if kw.arg is None:
                star_taint |= self.eval_expr(kw.value)

        result: TaintSet = star_taint
        for taints in arg_taints:
            result |= taints
        for taints in kw_taints.values():
            result |= taints

        chain = attr_chain(node.func)
        canonical = self._canonical(chain) if chain else None
        if canonical is not None:
            label = source_label(canonical)
            if label is not None and not self._in_hostclock():
                result |= frozenset({label})
            if (
                canonical in RNG_FACTORY_CALLS
                and not node.args
                and not node.keywords
            ):
                result |= frozenset({"host-rng"})  # unseeded factory

        site = self.analysis._site_of.get(id(node))
        if site is None or not site.targets:
            if chain is None:
                result |= self.eval_expr(node.func)
            elif chain[0] not in ("self", "cls"):
                # Method call on a (possibly tainted) receiver.
                result |= self.env.get(chain[0], EMPTY)
            return result

        # Receiver taint for attribute calls.
        if chain is not None and len(chain) > 1:
            result |= self.env.get(chain[0], EMPTY)

        targets = site.targets
        if site.kind == "by-name":
            targets = targets[:_BY_NAME_CAP]
        # Unambiguous resolution: direct/self-method, or a by-name site
        # whose attribute matches exactly one project function — precise
        # enough to report sinks without false fan-out.
        unambiguous = site.kind in ("direct", "self-method") or (
            site.kind == "by-name" and len(site.targets) == 1
        )

        for target in targets:
            target_func = self.analysis.index.functions.get(target)
            if target_func is None:
                continue
            offset = self._self_offset(site, target_func)
            summary = self.analysis.summaries.get(target)
            if summary is not None:
                # Map the callee's return-taint through this site's args.
                for taint in summary.returns:
                    if isinstance(taint, str):
                        result |= frozenset({taint})
                    else:
                        result |= self._arg_taint(
                            node, arg_taints, kw_taints, target_func,
                            taint[1] - offset,
                        )
                if unambiguous:
                    for param_idx, sinks in summary.param_sinks.items():
                        passed = self._arg_taint(
                            node, arg_taints, kw_taints, target_func,
                            param_idx - offset,
                        )
                        for label in labels_of(passed):
                            for sink in sinks:
                                self._record_at(
                                    node.lineno, label, sink, via=target
                                )
                        for pidx in params_of(passed):
                            self.param_sinks.setdefault(pidx, set()).update(sinks)
            # Direct sink: tainted argument into a sim-package callee.
            if unambiguous and self.analysis.is_sim_function(target):
                all_args = list(arg_taints) + list(kw_taints.values())
                for taints in all_args + [star_taint]:
                    self._record_sink(taints, node.lineno, sink=target, via=None)
        return result

    # -- helpers --------------------------------------------------------

    def _in_hostclock(self) -> bool:
        """True inside ``repro.obs.hostclock``, the one sanctioned
        host-clock module: its readings feed the host profiler only,
        never simulation state, so its summaries stay label-free (the
        same exemption CHX001 grants it statically)."""
        return self.func.module.rsplit(".", 1)[-1] == "hostclock"

    def _canonical(self, chain: List[str]) -> Optional[str]:
        if self.module is None:
            return ".".join(chain)
        head = chain[0]
        if head in self.module.imports:
            return ".".join([self.module.imports[head]] + chain[1:])
        return ".".join(chain)

    def _self_offset(self, site: CallSite, target: FunctionInfo) -> int:
        """1 when the call passes the receiver implicitly (bound method)."""
        if target.class_name is None:
            return 0
        chain = site.chain
        if chain is None:
            return 0
        if len(chain) >= 2:
            # Class.method(obj, ...) passes self explicitly only when the
            # head resolves to the class itself; self.meth(...) and
            # obj.meth(...) bind it.
            if self.module is not None and chain[0] in self.module.classes:
                return 0
            return 1
        return 0

    def _arg_taint(
        self,
        node: ast.Call,
        arg_taints: List[TaintSet],
        kw_taints: Dict[str, TaintSet],
        target: FunctionInfo,
        param_idx: int,
    ) -> TaintSet:
        """Taint of whatever this call passes for callee param ``param_idx``
        (an index into the callee's positional parameter list)."""
        if param_idx < 0:
            return EMPTY  # the bound receiver
        if param_idx < len(arg_taints):
            return arg_taints[param_idx]
        args = target.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if param_idx < len(names) and names[param_idx] in kw_taints:
            return kw_taints[names[param_idx]]
        return EMPTY

    def _record_sink(
        self, taints: TaintSet, line: int, sink: str, via: Optional[str]
    ) -> None:
        for label in labels_of(taints):
            self._record_at(line, label, sink, via)
        for pidx in params_of(taints):
            self.param_sinks.setdefault(pidx, set()).add(sink)

    def _record_at(
        self, line: int, label: str, sink: str, via: Optional[str]
    ) -> None:
        if not self.reporting:
            return
        self.reports.append(
            SinkReport(
                file=self.func.file,
                line=line,
                label=label,
                caller=self.func.qualname,
                sink=sink,
                via=via,
            )
        )


def _merge(a: Dict[str, TaintSet], b: Dict[str, TaintSet]) -> Dict[str, TaintSet]:
    merged = dict(a)
    for key, taints in b.items():
        merged[key] = merged.get(key, EMPTY) | taints
    return merged


__all__ = [
    "FunctionSummary",
    "SinkReport",
    "TaintAnalysis",
    "labels_of",
    "params_of",
    "source_label",
]

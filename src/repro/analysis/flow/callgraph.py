"""Project call graph over a :class:`ProjectIndex`.

Every call expression inside an indexed function becomes a
:class:`CallSite` with a *resolution kind*:

``direct``
    The callee expression resolves through the module namespace (bare
    name, imported name, ``Class.method``, or a class constructor).
``self-method``
    ``self.meth(...)`` / ``cls.meth(...)`` resolved through the
    enclosing class (including project-resolvable base classes).
``by-name``
    The receiver's type is unknown (``self.workload.merge(...)``); the
    attribute name matches one or more project functions/methods, and
    the site over-approximates to *all* of them.  Sound for
    reachability; imprecise by design.
``external``
    The head name binds to an import that is not part of the project
    (``time.monotonic`` when ``time`` is the stdlib module).
``builtin``
    A bare builtin (``len``, ``sorted`` …).
``dynamic``
    Anything the static model cannot name: calls of call results,
    subscripts, lambdas.

The resolution statistics split sites into *project domain* (the head
binds to project code, or ``self.``, or the attribute name exists in the
project) and everything else; the self-host smoke test asserts the
resolved fraction of the project domain stays >= 95%.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.flow.project import (
    BUILTIN_NAMES,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    attr_chain,
    enclosing_class_of,
)

#: Resolution kinds that point at project code.
PROJECT_KINDS = frozenset({"direct", "self-method", "by-name"})

#: Methods of builtin container/string types.  An attribute call with one
#: of these names on an unknown receiver is overwhelmingly a builtin op
#: (``chunks.append(...)``), so by-name matching against project methods
#: that happen to share the name would produce garbage edges.
COMMON_OBJECT_METHODS = frozenset(
    name
    for typ in (list, dict, set, frozenset, tuple, str, bytes)
    for name in dir(typ)
    if not name.startswith("_")
)


@dataclass
class CallSite:
    """One call expression inside an indexed function."""

    caller: str  # qualname of the enclosing function
    file: str
    line: int
    node: ast.Call
    #: dotted chain of the callee expression, or None for dynamic calls.
    chain: Optional[List[str]]
    kind: str  # direct | self-method | by-name | external | builtin | dynamic
    #: qualnames of project callees (possibly several for by-name).
    targets: List[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.chain[-1] if self.chain else "<dynamic>"


class CallGraph:
    """Call sites grouped by caller, plus reachability helpers."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        #: caller qualname -> its call sites, in source order.
        self.sites: Dict[str, List[CallSite]] = {}
        #: caller qualname -> set of callee qualnames.
        self.edges: Dict[str, Set[str]] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, index: ProjectIndex) -> "CallGraph":
        graph = cls(index)
        for func in index.iter_functions():
            module = index.modules.get(func.module)
            if module is None:
                continue
            class_ctx = enclosing_class_of(module, func)
            sites: List[CallSite] = []
            for node in ast.walk(func.node):
                if isinstance(node, ast.Call):
                    sites.append(graph._resolve_site(func, module, class_ctx, node))
            sites.sort(key=lambda s: (s.line, s.node.col_offset))
            graph.sites[func.qualname] = sites
            graph.edges[func.qualname] = {
                target for site in sites for target in site.targets
            }
        return graph

    def _resolve_site(
        self,
        func: FunctionInfo,
        module: ModuleInfo,
        class_ctx: Optional[ClassInfo],
        node: ast.Call,
    ) -> CallSite:
        chain = attr_chain(node.func)
        site = CallSite(
            caller=func.qualname,
            file=func.file,
            line=node.lineno,
            node=node,
            chain=chain,
            kind="dynamic",
        )
        if chain is None:
            return site

        head = chain[0]
        if head in ("self", "cls") and class_ctx is not None and len(chain) == 2:
            target = self.index.resolve_method(class_ctx, chain[1])
            if target is not None:
                site.kind = "self-method"
                site.targets = [target.qualname]
                return site
            # self.something where the class has no such method: fall
            # through to by-name (it may be a stored callable/strategy).

        resolved = self.index.resolve_chain_in(module, chain, class_ctx=class_ctx)
        if isinstance(resolved, FunctionInfo):
            site.kind = "direct"
            site.targets = [resolved.qualname]
            return site
        if isinstance(resolved, ClassInfo):
            # Constructor call: edge into __init__ when the project
            # defines one.
            init = self.index.resolve_method(resolved, "__init__")
            site.kind = "direct"
            site.targets = [init.qualname] if init is not None else []
            return site

        if head in module.imports and not self._is_project_module(
            module.imports[head]
        ):
            site.kind = "external"
            return site
        if len(chain) == 1 and head in BUILTIN_NAMES:
            site.kind = "builtin"
            return site

        # By-name over-approximation on the terminal attribute.
        name = chain[-1]
        if len(chain) > 1 and name in COMMON_OBJECT_METHODS:
            site.kind = "builtin"
            return site
        candidates: List[FunctionInfo] = []
        if len(chain) > 1:
            candidates = self.index.methods_by_name.get(name, [])
        if not candidates and len(chain) == 1:
            candidates = self.index.functions_by_name.get(name, [])
        if candidates:
            site.kind = "by-name"
            site.targets = [c.qualname for c in candidates]
            return site
        if name in BUILTIN_NAMES:
            site.kind = "builtin"
            return site
        return site

    def _is_project_module(self, dotted: str) -> bool:
        top = dotted.split(".")[0]
        return any(
            name == top or name.startswith(top + ".") for name in self.index.modules
        )

    # -- queries --------------------------------------------------------

    def call_sites_in(self, qualname: str) -> List[CallSite]:
        return self.sites.get(qualname, [])

    def callees(self, qualname: str) -> Set[str]:
        return self.edges.get(qualname, set())

    def reachable(self, start: str) -> Set[str]:
        """Every function transitively callable from ``start`` (inclusive)."""
        seen: Set[str] = set()
        stack = [start]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return seen

    def can_reach(self, start: str, targets: Set[str]) -> bool:
        seen: Set[str] = set()
        stack = [start]
        while stack:
            current = stack.pop()
            if current in targets:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return False

    def callers_of(self, qualname: str) -> Set[str]:
        return {
            caller for caller, callees in self.edges.items() if qualname in callees
        }

    # -- statistics -----------------------------------------------------

    def resolution_stats(self) -> Dict[str, object]:
        """Counts by kind, plus the project-domain resolution fraction."""
        by_kind: Dict[str, int] = {}
        for sites in self.sites.values():
            for site in sites:
                by_kind[site.kind] = by_kind.get(site.kind, 0) + 1
        project_sites = sum(by_kind.get(kind, 0) for kind in PROJECT_KINDS)
        project_domain = project_sites + self._unresolved_project_sites()
        fraction = project_sites / project_domain if project_domain else 1.0
        return {
            "by_kind": by_kind,
            "total_sites": sum(by_kind.values()),
            "project_sites_resolved": project_sites,
            "project_domain_sites": project_domain,
            "project_resolution_fraction": fraction,
        }

    def _unresolved_project_sites(self) -> int:
        """Dynamic/unresolved sites that still *look* like project calls:
        ``self.``-rooted chains, or heads bound to project symbols."""
        count = 0
        for sites in self.sites.values():
            for site in sites:
                if site.kind in PROJECT_KINDS or site.chain is None:
                    continue
                if site.kind in ("external", "builtin"):
                    continue
                head = site.chain[0]
                if head in ("self", "cls"):
                    count += 1
                    continue
                module = self.index.modules.get(
                    self.index.functions[site.caller].module
                )
                if module is not None and (
                    head in module.functions
                    or head in module.classes
                    or (
                        head in module.imports
                        and self._is_project_module(module.imports[head])
                    )
                ):
                    count += 1
        return count


def build_call_graph(index: ProjectIndex) -> CallGraph:
    return CallGraph.build(index)


__all__ = ["CallGraph", "CallSite", "PROJECT_KINDS", "build_call_graph"]

"""Deep-check driver: build the flow layer once, run every deep rule.

``check --deep`` goes through :class:`DeepEngine`.  Building the
:class:`ProjectIndex` (a full parse of the tree) dominates the cost, so
the engine can cache the pickled index keyed on a hash of every
``(path, content)`` pair — CI keeps the cache directory between runs
and pays the parse only when sources change.  Suppression semantics are
identical to the local engine's (inline ``# chaos: ignore[CHX###]``,
statement-span aware).
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.project import ProjectIndex
from repro.analysis.flow.rules import (
    ANALYZER_VERSION,
    DeepContext,
    DeepRule,
    RaceCandidate,
    collect_race_candidates,
    default_deep_rules,
)
from repro.analysis.lint import FileContext, LintResult

#: Bump to invalidate stale pickles when the index layout changes.
_CACHE_VERSION = 1


@dataclass
class DeepResult:
    """Outcome of a deep check: findings plus the flow-layer byproducts."""

    result: LintResult = field(default_factory=LintResult)
    candidates: List[RaceCandidate] = field(default_factory=list)
    resolution: Dict[str, object] = field(default_factory=dict)
    cache_hit: bool = False

    @property
    def clean(self) -> bool:
        return self.result.clean


def _collect_files(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            files.extend(
                p for p in sorted(root.rglob("*.py")) if "__pycache__" not in p.parts
            )
        else:
            files.append(root)
    return files


def source_tree_hash(paths: Iterable[str]) -> str:
    """Stable hash over every analyzed ``(path, content)`` pair.

    The key also carries the index-layout version *and* the deep
    analyzer's rule-logic version (:data:`ANALYZER_VERSION`): a rule
    change must invalidate cached results even when the analyzed
    sources are byte-identical, or ``.chaos-cache`` in CI would keep
    serving findings computed by the old rules.
    """
    digest = hashlib.sha256()
    digest.update(f"v{_CACHE_VERSION}.a{ANALYZER_VERSION}".encode())
    for path in _collect_files(paths):
        digest.update(str(path).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class DeepEngine:
    """Builds the flow layer and drives the deep rules over it."""

    def __init__(self, rules: Optional[Sequence[DeepRule]] = None):
        self.rules: List[DeepRule] = (
            list(rules) if rules is not None else default_deep_rules()
        )

    def rule_ids(self) -> List[str]:
        return [rule.rule_id for rule in self.rules]

    # -- index construction (cached) ------------------------------------

    def build_index(
        self, paths: Sequence[str], cache_dir: Optional[str] = None
    ) -> Tuple[ProjectIndex, bool]:
        """Return ``(index, cache_hit)``; caches the pickled index."""
        if cache_dir is None:
            return ProjectIndex.build(paths), False
        key = source_tree_hash(paths)
        cache_path = Path(cache_dir) / f"deepindex-{key}.pkl"
        if cache_path.exists():
            try:
                with cache_path.open("rb") as handle:
                    index = pickle.load(handle)
                if isinstance(index, ProjectIndex):
                    return index, True
            except Exception:
                pass  # corrupt/stale cache: fall through to a rebuild
        index = ProjectIndex.build(paths)
        try:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            tmp = cache_path.with_suffix(".tmp")
            with tmp.open("wb") as handle:
                pickle.dump(index, handle, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(cache_path)
        except Exception:
            pass  # caching is best-effort; the check itself proceeds
        return index, False

    # -- checking -------------------------------------------------------

    def check_paths(
        self, paths: Sequence[str], cache_dir: Optional[str] = None
    ) -> DeepResult:
        index, cache_hit = self.build_index(paths, cache_dir=cache_dir)
        graph = CallGraph.build(index)
        ctx = DeepContext(index, graph)

        raw: List[Finding] = []
        for rule in self.rules:
            raw.extend(rule.run(ctx))

        result = LintResult(files_checked=len(index.modules))
        suppressions = self._suppression_tables(index)
        seen = set()
        for finding in sorted(raw):
            key = (finding.file, finding.line, finding.rule_id, finding.message)
            if key in seen:
                continue
            seen.add(key)
            if finding.rule_id in suppressions.get(finding.file, {}).get(
                finding.line, ()
            ):
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)

        return DeepResult(
            result=result,
            candidates=collect_race_candidates(index),
            resolution=graph.resolution_stats(),
            cache_hit=cache_hit,
        )

    def _suppression_tables(self, index: ProjectIndex) -> Dict[str, Dict[int, set]]:
        tables: Dict[str, Dict[int, set]] = {}
        for module in index.modules.values():
            ctx = FileContext(module.file, module.source)
            tables[module.file] = ctx.effective_suppressions(module.tree)
        return tables


def collect_focus_kinds(paths: Sequence[str]) -> List[str]:
    """State kinds named by the static race candidates under ``paths``.

    ``run --sanitize --focus-from-check`` instruments only these kinds,
    prioritizing dynamic checking where the static pass found sanitizer
    traffic.
    """
    index = ProjectIndex.build(paths)
    kinds = {
        candidate.kind
        for candidate in collect_race_candidates(index)
        if candidate.kind is not None
    }
    return sorted(kinds)


__all__ = [
    "DeepEngine",
    "DeepResult",
    "collect_focus_kinds",
    "source_tree_hash",
]

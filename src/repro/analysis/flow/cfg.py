"""Per-function control-flow graphs at statement granularity.

Built once per function from the AST, the CFG answers the path-shape
questions the protocol rules ask:

* which statements can actually be reached (a branch ending in
  ``return``/``raise`` terminates its path),
* whether a statement list *definitely terminates* (every path leaves
  the function or the loop) — used by CHX010 to exempt early-exit
  branches from barrier pairing,
* which statements sit inside a ``try`` protected by a ``finally``
  — used by CHX009 to accept grant releases on exception paths.

Exception edges are over-approximated: any statement of a ``try`` body
may jump to each handler and to the ``finally`` suite.  Loops get the
usual back edge plus an exit edge from the header (``while True`` with
no ``break`` gets none, making code after it unreachable).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set


@dataclass
class Block:
    """A straight-line run of statements with no internal branching."""

    id: int
    statements: List[ast.stmt] = field(default_factory=list)
    successors: Set[int] = field(default_factory=set)
    #: "return" | "raise" | "break" | "continue" | None
    terminal: Optional[str] = None

    @property
    def first_line(self) -> Optional[int]:
        return self.statements[0].lineno if self.statements else None


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self) -> None:
        self.blocks: Dict[int, Block] = {}
        self.entry: int = 0
        self.exit: int = 1  # virtual exit block (function return)

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, func: ast.AST) -> "CFG":
        cfg = cls()
        entry = cfg._new_block()
        cfg.entry = entry.id
        exit_block = cfg._new_block()
        cfg.exit = exit_block.id
        last = cfg._build_body(getattr(func, "body", []), entry, None, None)
        if last is not None:
            last.successors.add(cfg.exit)
        return cfg

    def _new_block(self) -> Block:
        block = Block(id=len(self.blocks))
        self.blocks[block.id] = block
        return block

    def _build_body(
        self,
        statements: Sequence[ast.stmt],
        current: Block,
        break_target: Optional[int],
        continue_target: Optional[int],
    ) -> Optional[Block]:
        """Thread ``statements`` starting in ``current``.

        Returns the open block at the end of the list, or None when every
        path has terminated (return/raise/break/continue).
        """
        for stmt in statements:
            if current is None:
                # Dead code after a terminator: give it its own
                # unreachable block so lines still exist in the graph.
                current = self._new_block()
            if isinstance(stmt, (ast.Return, ast.Raise)):
                current.statements.append(stmt)
                current.terminal = "return" if isinstance(stmt, ast.Return) else "raise"
                current.successors.add(self.exit)
                current = None
            elif isinstance(stmt, ast.Break):
                current.statements.append(stmt)
                current.terminal = "break"
                if break_target is not None:
                    current.successors.add(break_target)
                current = None
            elif isinstance(stmt, ast.Continue):
                current.statements.append(stmt)
                current.terminal = "continue"
                if continue_target is not None:
                    current.successors.add(continue_target)
                current = None
            elif isinstance(stmt, ast.If):
                current.statements.append(stmt)
                join = self._new_block()
                then_block = self._new_block()
                current.successors.add(then_block.id)
                then_end = self._build_body(
                    stmt.body, then_block, break_target, continue_target
                )
                if then_end is not None:
                    then_end.successors.add(join.id)
                if stmt.orelse:
                    else_block = self._new_block()
                    current.successors.add(else_block.id)
                    else_end = self._build_body(
                        stmt.orelse, else_block, break_target, continue_target
                    )
                    if else_end is not None:
                        else_end.successors.add(join.id)
                else:
                    current.successors.add(join.id)
                current = join
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                current.statements.append(stmt)
                header = self._new_block()
                current.successors.add(header.id)
                after = self._new_block()
                body_block = self._new_block()
                header.successors.add(body_block.id)
                infinite = (
                    isinstance(stmt, ast.While)
                    and isinstance(stmt.test, ast.Constant)
                    and bool(stmt.test.value)
                )
                if not infinite:
                    header.successors.add(after.id)
                body_end = self._build_body(
                    stmt.body, body_block, after.id, header.id
                )
                if body_end is not None:
                    body_end.successors.add(header.id)
                if stmt.orelse:
                    else_end = self._build_body(
                        stmt.orelse, header, break_target, continue_target
                    )
                    if else_end is not None:
                        else_end.successors.add(after.id)
                # break statements already point at ``after``.
                if infinite and not self._has_edge_into(after.id):
                    current = None  # while True with no break: no exit
                else:
                    current = after
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                current.statements.append(stmt)
                inner = self._new_block()
                current.successors.add(inner.id)
                current = self._build_body(
                    stmt.body, inner, break_target, continue_target
                )
            elif isinstance(stmt, ast.Try):
                current.statements.append(stmt)
                body_block = self._new_block()
                current.successors.add(body_block.id)
                after = self._new_block()
                body_end = self._build_body(
                    stmt.body, body_block, break_target, continue_target
                )
                handler_ends: List[Optional[Block]] = []
                for handler in stmt.handlers:
                    handler_block = self._new_block()
                    # Any statement in the body may raise into the handler.
                    body_block.successors.add(handler_block.id)
                    handler_ends.append(
                        self._build_body(
                            handler.body, handler_block, break_target, continue_target
                        )
                    )
                else_end = body_end
                if stmt.orelse and body_end is not None:
                    else_block = self._new_block()
                    body_end.successors.add(else_block.id)
                    else_end = self._build_body(
                        stmt.orelse, else_block, break_target, continue_target
                    )
                tails = [else_end] + handler_ends
                open_tails = [t for t in tails if t is not None]
                if stmt.finalbody:
                    final_block = self._new_block()
                    for tail in open_tails:
                        tail.successors.add(final_block.id)
                    # Exceptional entry into finally as well.
                    body_block.successors.add(final_block.id)
                    current = self._build_body(
                        stmt.finalbody, final_block, break_target, continue_target
                    )
                    if current is not None and open_tails:
                        current.successors.add(after.id)
                        current = after
                    elif current is not None:
                        # Every guarded path terminated; finally falls
                        # through only on the exceptional path (re-raise).
                        current.successors.add(self.exit)
                        current = None
                else:
                    for tail in open_tails:
                        tail.successors.add(after.id)
                    current = after if open_tails else None
            else:
                current.statements.append(stmt)
        return current

    def _has_edge_into(self, block_id: int) -> bool:
        return any(
            block_id in block.successors for block in self.blocks.values()
        )

    # -- queries --------------------------------------------------------

    def reachable_blocks(self) -> Set[int]:
        seen: Set[int] = set()
        stack = [self.entry]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.blocks[current].successors)
        return seen

    def statements_in_order(self) -> List[ast.stmt]:
        out: List[ast.stmt] = []
        for block_id in sorted(self.blocks):
            out.extend(self.blocks[block_id].statements)
        return out


def definitely_terminates(statements: Sequence[ast.stmt]) -> bool:
    """True when every path through ``statements`` leaves the enclosing
    function or loop (return/raise/break/continue), so code after the
    list is unreachable on this branch."""
    for stmt in statements:
        if isinstance(stmt, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
            return True
        if isinstance(stmt, ast.If) and stmt.orelse:
            if definitely_terminates(stmt.body) and definitely_terminates(
                stmt.orelse
            ):
                return True
        if isinstance(stmt, ast.Try):
            tails = [stmt.body + stmt.orelse] + [h.body for h in stmt.handlers]
            if stmt.finalbody and definitely_terminates(stmt.finalbody):
                return True
            if all(definitely_terminates(t) for t in tails):
                return True
    return False


def yield_lines(func: ast.AST) -> List[int]:
    """Lines holding a yield/yield-from in the function's own scope."""
    lines: List[int] = []
    stack = list(getattr(func, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            lines.append(node.lineno)
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return sorted(lines)


__all__ = ["Block", "CFG", "definitely_terminates", "yield_lines"]

"""Escape analysis for the would-be process boundary.

ROADMAP item 2 replaces the single-process machine emulation with real
worker processes.  Today every :class:`ComputationEngine` instance
lives in one interpreter, so nothing stops an engine from holding a
lambda, sharing a mutable ``dict`` with its neighbours, or reading a
module-level cache — all of which break the moment a machine becomes a
separate process (unpicklable state can't cross ``fork``/``spawn``
boundaries; aliased mutable state silently stops being shared).

This module finds that state *statically*:

* :func:`per_machine_classes` — the classes that model one emulated
  machine (their ``__init__`` takes a ``machine`` identity parameter).
* :func:`unpicklable_captures` — attributes of such a class bound to
  values ``pickle`` rejects (lambdas, generators, open files).
* :func:`aliased_constructions` — loop/comprehension construction
  sites where several machines' instances receive the *same* object
  (an argument that does not depend on the loop variable), i.e. state
  that aliases another machine's today and won't tomorrow.
* :func:`shared_mutable_globals` — module-level mutable containers in
  sim packages reachable from per-machine call graphs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    attr_chain,
    dump_expr,
)
from repro.analysis.lint import SIM_PACKAGES

#: Module-level calls that build a fresh mutable container.
_MUTABLE_FACTORY_CALLS = frozenset(
    {"dict", "list", "set", "bytearray", "defaultdict", "deque", "Counter",
     "OrderedDict"}
)


def _module_is_sim(module_name: str) -> bool:
    return any(part in SIM_PACKAGES for part in module_name.split("."))


def per_machine_classes(index: ProjectIndex) -> Dict[str, ClassInfo]:
    """Sim-package classes whose ``__init__`` takes a ``machine`` id.

    These are the classes that become one-per-worker-process under the
    real-process backend; their captured state is exactly the state
    that must serialize and must not alias.
    """
    out: Dict[str, ClassInfo] = {}
    for qualname, cls_info in sorted(index.classes.items()):
        if not _module_is_sim(cls_info.module):
            continue
        init = cls_info.methods.get("__init__")
        if init is None:
            continue
        arg_names = {a.arg for a in init.node.args.args} | {
            a.arg for a in init.node.args.kwonlyargs
        }
        if "machine" in arg_names:
            out[qualname] = cls_info
    return out


# ---------------------------------------------------------------------------
# unpicklable captures
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class UnpicklableCapture:
    """``self.<attr> = <value pickle rejects>`` in a per-machine class."""

    cls: str  # class qualname
    attr: str
    file: str
    line: int
    reason: str


def _unpicklable_reason(
    value: ast.expr, module: ModuleInfo, index: ProjectIndex
) -> Optional[str]:
    if isinstance(value, ast.Lambda):
        return "a lambda (pickle rejects function objects defined inline)"
    if isinstance(value, ast.GeneratorExp):
        return "a generator expression (generators cannot be pickled)"
    if isinstance(value, ast.Call):
        chain = attr_chain(value.func)
        if chain is None:
            return None
        if chain == ["open"]:
            return "an open file handle (file objects cannot be pickled)"
        resolved = index.resolve_chain_in(module, chain)
        if isinstance(resolved, FunctionInfo) and resolved.is_generator:
            return (
                f"a running generator ('{resolved.qualname}' is a "
                f"generator function; generators cannot be pickled)"
            )
    return None


def unpicklable_captures(index: ProjectIndex) -> List[UnpicklableCapture]:
    captures: List[UnpicklableCapture] = []
    for qualname, cls_info in sorted(per_machine_classes(index).items()):
        module = index.modules.get(cls_info.module)
        if module is None:
            continue
        init = cls_info.methods["__init__"]
        nested_defs = {
            child.name
            for child in ast.walk(init.node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not init.node
        }
        for stmt in ast.walk(init.node):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            chain = attr_chain(target)
            if chain is None or len(chain) != 2 or chain[0] != "self":
                continue
            reason = _unpicklable_reason(stmt.value, module, index)
            if reason is None and isinstance(stmt.value, ast.Name) and (
                stmt.value.id in nested_defs
            ):
                reason = (
                    f"a nested function ('{stmt.value.id}' is defined "
                    f"inside __init__; pickle rejects local functions)"
                )
            if reason is not None:
                captures.append(
                    UnpicklableCapture(
                        cls=qualname,
                        attr=chain[1],
                        file=cls_info.file,
                        line=stmt.lineno,
                        reason=reason,
                    )
                )
    captures.sort(key=lambda c: (c.file, c.line, c.attr))
    return captures


# ---------------------------------------------------------------------------
# aliased construction sites
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AliasedConstruction:
    """One per-machine instance built in a loop with shared arguments."""

    cls: str  # constructed class qualname
    file: str
    line: int
    caller: str  # enclosing function qualname
    shared: Tuple[str, ...]  # argument expressions every instance aliases


def _iteration_calls(
    func_node: ast.AST,
) -> Iterator[Tuple[ast.Call, Set[str]]]:
    """Calls executed once per loop/comprehension iteration, with the
    iteration variables in scope at the call."""
    stack: List[Tuple[ast.AST, frozenset]] = [(func_node, frozenset())]
    while stack:
        node, loop_vars = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ) and node is not func_node:
            continue
        if isinstance(node, (ast.For, ast.AsyncFor)):
            inner = loop_vars | {
                n.id
                for n in ast.walk(node.target)
                if isinstance(n, ast.Name)
            }
            for child in node.body + node.orelse:
                stack.append((child, frozenset(inner)))
            stack.append((node.iter, loop_vars))
            continue
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            inner = set(loop_vars)
            for gen in node.generators:
                stack.append((gen.iter, frozenset(inner)))
                inner |= {
                    n.id
                    for n in ast.walk(gen.target)
                    if isinstance(n, ast.Name)
                }
                for cond in gen.ifs:
                    stack.append((cond, frozenset(inner)))
            elts = (
                [node.key, node.value]
                if isinstance(node, ast.DictComp)
                else [node.elt]
            )
            for elt in elts:
                stack.append((elt, frozenset(inner)))
            continue
        if isinstance(node, ast.Call) and loop_vars:
            yield node, set(loop_vars)
        for child in ast.iter_child_nodes(node):
            stack.append((child, loop_vars))


def _shared_args(call: ast.Call, loop_vars: Set[str]) -> List[str]:
    """Argument expressions that are identical across loop iterations
    and plausibly mutable (names/attribute chains, not literals)."""
    shared: List[str] = []
    args: List[ast.expr] = list(call.args) + [kw.value for kw in call.keywords]
    for arg in args:
        if isinstance(arg, ast.Starred):
            arg = arg.value
        chain = attr_chain(arg)
        if chain is None:
            continue  # literals, subscripts, calls: not a stable alias
        if chain[0] in loop_vars:
            continue  # varies per iteration
        if chain[0] in ("self", "cls") and len(chain) == 1:
            continue
        shared.append(".".join(chain))
    return shared


def aliased_constructions(
    index: ProjectIndex, graph: CallGraph
) -> List[AliasedConstruction]:
    machine_classes = per_machine_classes(index)
    if not machine_classes:
        return []
    init_to_class = {
        cls_info.methods["__init__"].qualname: qualname
        for qualname, cls_info in machine_classes.items()
    }
    out: List[AliasedConstruction] = []
    for func in index.iter_functions():
        site_of = {
            id(site.node): site for site in graph.call_sites_in(func.qualname)
        }
        for call, loop_vars in _iteration_calls(func.node):
            site = site_of.get(id(call))
            if site is None or site.kind != "direct":
                continue
            target_cls = None
            for target in site.targets:
                if target in init_to_class:
                    target_cls = init_to_class[target]
                    break
            if target_cls is None:
                continue
            shared = _shared_args(call, loop_vars)
            if not shared:
                continue
            out.append(
                AliasedConstruction(
                    cls=target_cls,
                    file=func.file,
                    line=call.lineno,
                    caller=func.qualname,
                    shared=tuple(shared),
                )
            )
    out.sort(key=lambda c: (c.file, c.line))
    return out


# ---------------------------------------------------------------------------
# shared mutable module-level state
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SharedGlobal:
    """A module-level mutable container on a per-machine call path."""

    name: str  # bare global name
    module: str
    file: str
    line: int
    via: str  # one reachable function that reads it


def _mutable_global_defs(module: ModuleInfo) -> Iterator[Tuple[str, int]]:
    for stmt in module.tree.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name) or target.id.startswith("__"):
            continue
        value = stmt.value
        if isinstance(value, (ast.Dict, ast.List, ast.Set)):
            yield target.id, stmt.lineno
        elif isinstance(value, ast.Call):
            chain = attr_chain(value.func)
            if chain is not None and chain[-1] in _MUTABLE_FACTORY_CALLS:
                yield target.id, stmt.lineno


def _reads_global(
    func: FunctionInfo, module_name: str, global_name: str, index: ProjectIndex
) -> bool:
    func_module = index.modules.get(func.module)
    for node in ast.walk(func.node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id == global_name and func.module == module_name:
                return True
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            chain = attr_chain(node)
            if (
                chain is not None
                and len(chain) == 2
                and chain[1] == global_name
                and func_module is not None
                and func_module.imports.get(chain[0]) == module_name
            ):
                return True
    return False


def shared_mutable_globals(
    index: ProjectIndex, graph: CallGraph
) -> List[SharedGlobal]:
    """Mutable module globals reachable from per-machine call graphs.

    Every per-machine class is instantiated once per emulated machine,
    so anything its methods (transitively) read from module scope is
    read by *all* machines — shared state the process backend must
    either pass explicitly or freeze.
    """
    machine_classes = per_machine_classes(index)
    if not machine_classes:
        return []
    reachable: Set[str] = set()
    for cls_info in machine_classes.values():
        for method in cls_info.methods.values():
            reachable |= graph.reachable(method.qualname)

    out: List[SharedGlobal] = []
    for module in sorted(index.modules.values(), key=lambda m: m.file):
        if not _module_is_sim(module.name):
            continue
        for global_name, line in _mutable_global_defs(module):
            via = None
            for qualname in sorted(reachable):
                func = index.functions.get(qualname)
                if func is None:
                    continue
                if _reads_global(func, module.name, global_name, index):
                    via = qualname
                    break
            if via is not None:
                out.append(
                    SharedGlobal(
                        name=global_name,
                        module=module.name,
                        file=module.file,
                        line=line,
                        via=via,
                    )
                )
    out.sort(key=lambda g: (g.file, g.line))
    return out


__all__ = [
    "AliasedConstruction",
    "SharedGlobal",
    "UnpicklableCapture",
    "aliased_constructions",
    "per_machine_classes",
    "shared_mutable_globals",
    "unpicklable_captures",
]

"""Interprocedural rules CHX008-CHX023 over the flow layer.

Unlike the local rules (which see one AST at a time), a deep rule sees
the whole project: the :class:`DeepContext` bundles the project index,
the call graph and the taint analysis.  Each rule's ``run`` returns
plain :class:`~repro.analysis.findings.Finding` objects; the deep
engine applies inline suppressions afterwards, exactly like the local
engine does.

CHX008–012 guard the determinism invariant of the *current* runtime;
CHX013–017 guard the two refactors on the ROADMAP — columnar numpy
kernels (loop-carried dependences, per-edge allocation) and the
real-process backend (unpicklable/aliased per-machine state, shared
module globals, order-sensitive reductions).  CHX018 guards the chaos
fuzzer's replay contract: every RNG in the fault-injection and fuzzing
packages must be seeded, or shrunk reproducer plans stop reproducing.
CHX019–023 stand on the extracted protocol model
(:mod:`repro.analysis.protocol`): unhandled sends, unfenced receive
loops, untimed remote waits, lopsided barrier arrivals and message
kinds outside the modeled vocabulary.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.flow.callgraph import CallGraph, CallSite
from repro.analysis.flow.cfg import definitely_terminates
from repro.analysis.flow.dataflow import TaintAnalysis
from repro.analysis.flow.escape import (
    aliased_constructions,
    shared_mutable_globals,
    unpicklable_captures,
)
from repro.analysis.flow.loops import (
    HOT_PACKAGES,
    SEQUENTIAL,
    hot_functions,
    loop_infos_in,
)
from repro.analysis.flow.project import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    attr_chain,
    dump_expr,
    parse_constant_int,
)
from repro.analysis.lint import SIM_PACKAGES

#: Sim packages plus the analysis package itself (the sanitizer's own
#: state is simulated-run state).
DEEP_SIM_PACKAGES: FrozenSet[str] = SIM_PACKAGES | frozenset({"analysis"})

#: Version of the deep analyzer's *rule logic*.  Mixed into the
#: ``check --deep`` pickled-index cache key alongside the index-layout
#: version, so a rule change invalidates cached results even when the
#: analyzed sources are unchanged.  Bump on any behavioural change to
#: the deep rules or the analyses they stand on.
#:
#: 1 — CHX008–012 (PR 5).
#: 2 — CHX013–017: loop dependence + escape analysis.
#: 3 — CHX018: unseeded RNG in fault-injection/fuzzing code.
#: 4 — CHX019–023: protocol model extraction (unhandled sends,
#:     unfenced receives, untimed waits, lopsided barrier arrives,
#:     ghost message kinds) — this revision.
ANALYZER_VERSION = 4


class DeepContext:
    """Everything a deep rule needs, built once per ``check --deep``."""

    def __init__(self, index: ProjectIndex, graph: Optional[CallGraph] = None):
        self.index = index
        self.graph = graph if graph is not None else CallGraph.build(index)
        self.taint = TaintAnalysis(self.index, self.graph, DEEP_SIM_PACKAGES)
        self._protocol = None

    def module_is_sim(self, module_name: str) -> bool:
        return any(part in SIM_PACKAGES for part in module_name.split("."))

    def protocol(self):
        """The extracted protocol model, built lazily and shared by the
        CHX019–023 rules (and ``check --protocol``)."""
        if self._protocol is None:
            from repro.analysis.protocol.extract import extract_model

            self._protocol = extract_model(self.index, self.graph)
        return self._protocol


class DeepRule:
    """Base for whole-program rules."""

    rule_id: str = "CHX0xx"
    severity: str = "error"
    title: str = ""

    def run(self, ctx: DeepContext) -> Iterator[Finding]:
        return iter(())

    def _finding(self, file: str, line: int, message: str) -> Finding:
        return Finding(
            file=file,
            line=line,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
        )


# ---------------------------------------------------------------------------
# CHX008: host-nondeterminism taint reaching simulated state
# ---------------------------------------------------------------------------


class InterproceduralTaintRule(DeepRule):
    """Wall-clock / host-RNG / host-id values flowing, through any call
    chain, into a sim-package call or sim-class attribute.

    Closes the CHX001/CHX002 laundering hole: those rules see only the
    source *expression* inside a sim package; a helper in ``graph/`` or
    ``perf/`` that returns ``time.time()`` and hands it to
    ``Simulator``-side code slipped through.
    """

    rule_id = "CHX008"
    severity = "error"
    title = "host-nondeterministic value flows into simulated state"

    def run(self, ctx: DeepContext) -> Iterator[Finding]:
        for report in ctx.taint.run():
            yield self._finding(report.file, report.line, report.message())


# ---------------------------------------------------------------------------
# CHX009: acquire/release pairing across yields
# ---------------------------------------------------------------------------


@dataclass
class _GrantSummary:
    """Net grant effect of one function (over all paths, may-analysis)."""

    acquired: Set[str] = field(default_factory=set)  # held at some exit
    released: Set[str] = field(default_factory=set)


class GrantPairingRule(DeepRule):
    """Simulated resource grants (``X.acquire()``) must be released on
    every path, and a grant held across a ``yield`` must be protected by
    a ``try/finally`` that releases it — an :class:`Interrupt` thrown at
    the yield otherwise leaks the grant forever (the simulated semaphore
    has no timeout).

    Interprocedural: a helper that acquires without releasing
    contributes its net grants to the caller; a helper that releases
    clears them (the split-pair pattern ``_get_slot``/``_put_slot``).
    """

    rule_id = "CHX009"
    severity = "error"
    title = "resource grant not released on every path"

    def run(self, ctx: DeepContext) -> Iterator[Finding]:
        summaries = self._summarize(ctx)
        for func in ctx.index.iter_functions():
            if not func.is_generator:
                continue
            yield from self._check_function(ctx, func, summaries)

    # -- summaries ------------------------------------------------------

    def _summarize(self, ctx: DeepContext) -> Dict[str, _GrantSummary]:
        summaries: Dict[str, _GrantSummary] = {}
        for _ in range(3):  # transitive helpers; project chains are shallow
            changed = False
            for func in ctx.index.iter_functions():
                walker = _GrantWalker(ctx, func, summaries, report=False)
                walker.walk()
                new = _GrantSummary(
                    acquired=set(walker.held), released=set(walker.released)
                )
                old = summaries.get(func.qualname)
                if old is None or old.acquired != new.acquired or (
                    old.released != new.released
                ):
                    summaries[func.qualname] = new
                    changed = True
            if not changed:
                break
        return summaries

    def _check_function(
        self,
        ctx: DeepContext,
        func: FunctionInfo,
        summaries: Dict[str, _GrantSummary],
    ) -> Iterator[Finding]:
        walker = _GrantWalker(ctx, func, summaries, report=True)
        walker.walk()
        for key, line in sorted(walker.held.items()):
            yield self._finding(
                func.file,
                line,
                f"grant '{key}.acquire()' (in {func.name}) may not be "
                f"released on every path to function exit",
            )
        for key, acquire_line, yield_line in sorted(walker.unprotected_yields):
            yield self._finding(
                func.file,
                yield_line,
                f"grant '{key}' (acquired at line {acquire_line}) is held "
                f"across this yield without a finally release; an Interrupt "
                f"here leaks the grant",
            )


class _GrantWalker:
    """Tracks may-held grants through one function body.

    Grant lifecycle in the simulated runtime: ``X.acquire()`` returns an
    *event*; the grant is held only once that event is yielded (the
    scheduler resumes the process when the semaphore admits it).  So

    * ``yield X.acquire()`` — held *after* this statement,
    * ``evt = X.acquire()`` — *pending* until ``yield evt``,
    * ``X.release()`` — drops the grant,
    * ``return evt`` of a pending event — ownership transfers to the
      caller (tracked through the caller's view of this function's
      summary instead).
    """

    def __init__(
        self,
        ctx: DeepContext,
        func: FunctionInfo,
        summaries: Dict[str, _GrantSummary],
        report: bool,
    ):
        self.ctx = ctx
        self.func = func
        self.summaries = summaries
        self.report = report
        self.held: Dict[str, int] = {}  # grant key -> acquire line
        self.pending: Dict[str, Tuple[str, int]] = {}  # var -> (key, line)
        self.released: Set[str] = set()
        #: (key, acquire_line, yield_line) triples to report.
        self.unprotected_yields: Set[Tuple[str, int, int]] = set()
        self._site_of = {
            id(site.node): site
            for site in ctx.graph.call_sites_in(func.qualname)
        }

    def walk(self) -> None:
        self._walk_stmts(self.func.node.body, protected=frozenset())
        # Pending events never yielded nor released still reserved a
        # queue slot; count them as leaked too.
        for key, line in self.pending.values():
            self.held.setdefault(key, line)

    # -- statement walk -------------------------------------------------

    def _walk_stmts(self, stmts: Sequence[ast.stmt], protected: FrozenSet[str]) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt, protected)

    def _walk_stmt(self, stmt: ast.stmt, protected: FrozenSet[str]) -> None:
        if isinstance(stmt, ast.If):
            before_held = dict(self.held)
            before_pending = dict(self.pending)
            self._walk_stmts(stmt.body, protected)
            then_held, then_pending = self.held, self.pending
            self.held, self.pending = dict(before_held), dict(before_pending)
            self._walk_stmts(stmt.orelse, protected)
            # May-held union; a branch that terminates doesn't leak into
            # the join (its paths never reach function end from here).
            then_out = {} if definitely_terminates(stmt.body) else then_held
            else_out = (
                {} if stmt.orelse and definitely_terminates(stmt.orelse) else self.held
            )
            merged = dict(else_out)
            for key, line in then_out.items():
                merged.setdefault(key, line)
            self.held = merged
            merged_pending = dict(self.pending)
            for var, value in then_pending.items():
                merged_pending.setdefault(var, value)
            self.pending = merged_pending
        elif isinstance(stmt, (ast.For, ast.While, ast.AsyncFor)):
            self._scan_effects(stmt, protected, header_only=True)
            before = dict(self.held)
            self._walk_stmts(stmt.body, protected)
            self._walk_stmts(stmt.orelse, protected)
            for key, line in before.items():
                self.held.setdefault(key, line)
        elif isinstance(stmt, ast.Try):
            released_in_finally = self._releases_in(stmt.finalbody)
            self._walk_stmts(stmt.body, protected | released_in_finally)
            for handler in stmt.handlers:
                self._walk_stmts(handler.body, protected | released_in_finally)
            self._walk_stmts(stmt.orelse, protected | released_in_finally)
            self._walk_stmts(stmt.finalbody, protected)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._scan_effects(stmt, protected, header_only=True)
            self._walk_stmts(stmt.body, protected)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # separate scope
        elif isinstance(stmt, ast.Return):
            if isinstance(stmt.value, ast.Name):
                # Returning a pending acquire event transfers ownership.
                self.pending.pop(stmt.value.id, None)
            self._scan_effects(stmt, protected)
        else:
            self._scan_effects(stmt, protected)

    def _scan_effects(
        self,
        stmt: ast.stmt,
        protected: FrozenSet[str],
        header_only: bool = False,
    ) -> None:
        """Acquire/release/yield effects of one simple statement (or of
        a compound statement's header expressions only)."""
        nodes: List[ast.AST] = []
        if header_only:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    nodes.append(child)
        else:
            nodes.append(stmt)
        calls: List[ast.Call] = []
        yields: List[ast.AST] = []
        for root in nodes:
            stack = [root]
            while stack:
                node = stack.pop()
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                if isinstance(node, ast.Call):
                    calls.append(node)
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    yields.append(node)
                stack.extend(ast.iter_child_nodes(node))

        #: grants that become held only after this statement completes.
        deferred: Dict[str, int] = {}
        for call in sorted(calls, key=lambda c: (c.lineno, c.col_offset)):
            self._apply_call(call, stmt, deferred)
        # Yielding a pending acquire event converts it to held — after
        # this statement, so the acquiring yield itself never flags.
        for node in yields:
            value = getattr(node, "value", None)
            if isinstance(value, ast.Name) and value.id in self.pending:
                key, line = self.pending.pop(value.id)
                deferred.setdefault(key, line)
        for node in yields:
            for key, acquire_line in list(self.held.items()):
                if key not in protected:
                    self.unprotected_yields.add((key, acquire_line, node.lineno))
        for key, line in deferred.items():
            self.held.setdefault(key, line)

    def _apply_call(
        self, call: ast.Call, stmt: ast.stmt, deferred: Dict[str, int]
    ) -> None:
        chain = attr_chain(call.func)
        if chain is not None and len(chain) >= 2:
            receiver = ".".join(chain[:-1])
            if chain[-1] == "acquire":
                bound = self._binding_of(call, stmt)
                if bound is not None:
                    self.pending[bound] = (receiver, call.lineno)
                else:
                    deferred.setdefault(receiver, call.lineno)
                return
            if chain[-1] == "release":
                self.held.pop(receiver, None)
                for var, (key, _line) in list(self.pending.items()):
                    if key == receiver:
                        del self.pending[var]
                self.released.add(receiver)
                return
        site = self._site_of.get(id(call))
        if site is not None and site.kind in ("direct", "self-method"):
            for target in site.targets:
                summary = self.summaries.get(target)
                if summary is None:
                    continue
                for key in summary.released:
                    self.held.pop(key, None)
                    self.released.add(key)
                for key in summary.acquired:
                    deferred.setdefault(key, call.lineno)

    @staticmethod
    def _binding_of(call: ast.Call, stmt: ast.stmt) -> Optional[str]:
        """The local name an acquire event is stored under, if the
        statement is a plain ``name = X.acquire()`` binding."""
        if isinstance(stmt, ast.Assign) and stmt.value is call:
            if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                return stmt.targets[0].id
        if isinstance(stmt, ast.AnnAssign) and stmt.value is call:
            if isinstance(stmt.target, ast.Name):
                return stmt.target.id
        return None

    def _releases_in(self, stmts: Sequence[ast.stmt]) -> FrozenSet[str]:
        released: Set[str] = set()
        for stmt in stmts:
            stack: List[ast.AST] = [stmt]
            while stack:
                node = stack.pop()
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                if isinstance(node, ast.Call):
                    chain = attr_chain(node.func)
                    if chain is not None and len(chain) >= 2:
                        if chain[-1] == "release":
                            released.add(".".join(chain[:-1]))
                    site = self._site_of.get(id(node))
                    if site is not None and site.kind in ("direct", "self-method"):
                        for target in site.targets:
                            summary = self.summaries.get(target)
                            if summary is not None:
                                released.update(summary.released)
                stack.extend(ast.iter_child_nodes(node))
        return frozenset(released)


# ---------------------------------------------------------------------------
# CHX010: barrier pairing across branches
# ---------------------------------------------------------------------------


class BarrierPairingRule(DeepRule):
    """Every code path through an engine function must reach the same
    barrier sequence.  A branch that waits on a barrier the other branch
    skips deadlocks the cluster (the barrier waits forever for the
    skipping machine) — unless the skipping branch leaves the function
    entirely.  Barrier reachability is transitive over the call graph.
    """

    rule_id = "CHX010"
    severity = "error"
    title = "code paths diverge in barrier sequence"

    def run(self, ctx: DeepContext) -> Iterator[Finding]:
        self._ctx = ctx
        self._memo: Dict[str, Tuple] = {}
        for func in ctx.index.iter_functions():
            if not ctx.module_is_sim(func.module):
                continue
            site_of = {
                id(site.node): site
                for site in ctx.graph.call_sites_in(func.qualname)
            }
            yield from self._check_stmts(func, func.node.body, site_of)

    # -- signatures -----------------------------------------------------

    def _sig_of_function(self, qualname: str, seen: FrozenSet[str]) -> Tuple:
        if qualname in self._memo:
            return self._memo[qualname]
        if qualname in seen:
            return ()  # recursion: bound the signature
        func = self._ctx.index.functions.get(qualname)
        if func is None:
            return ()
        site_of = {
            id(site.node): site
            for site in self._ctx.graph.call_sites_in(qualname)
        }
        sig = self._sig_of_stmts(
            func.node.body, site_of, seen | {qualname}
        )
        self._memo[qualname] = sig
        return sig

    def _sig_of_stmts(
        self,
        stmts: Sequence[ast.stmt],
        site_of: Dict[int, CallSite],
        seen: FrozenSet[str],
    ) -> Tuple:
        parts: List[object] = []
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                then_sig = self._sig_of_stmts(stmt.body, site_of, seen)
                else_sig = self._sig_of_stmts(stmt.orelse, site_of, seen)
                if then_sig == else_sig:
                    parts.extend(then_sig)
                elif definitely_terminates(stmt.body):
                    parts.extend(else_sig)
                elif stmt.orelse and definitely_terminates(stmt.orelse):
                    parts.extend(then_sig)
                else:
                    parts.append("?")  # divergence; reported at the If itself
            elif isinstance(stmt, (ast.For, ast.While, ast.AsyncFor)):
                body_sig = self._sig_of_stmts(
                    stmt.body + stmt.orelse, site_of, seen
                )
                if body_sig:
                    parts.append(("loop",) + body_sig)
            elif isinstance(stmt, ast.Try):
                parts.extend(self._sig_of_stmts(stmt.body, site_of, seen))
                parts.extend(self._sig_of_stmts(stmt.finalbody, site_of, seen))
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                parts.extend(self._sig_of_stmts(stmt.body, site_of, seen))
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            else:
                parts.extend(self._sig_of_simple(stmt, site_of, seen))
        return tuple(parts)

    def _sig_of_simple(
        self,
        stmt: ast.stmt,
        site_of: Dict[int, CallSite],
        seen: FrozenSet[str],
    ) -> Tuple:
        parts: List[object] = []
        stack: List[ast.AST] = [stmt]
        calls: List[ast.Call] = []
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                calls.append(node)
            stack.extend(ast.iter_child_nodes(node))
        for call in sorted(calls, key=lambda c: (c.lineno, c.col_offset)):
            if _is_barrier_wait(call):
                parts.append("wait")
                continue
            site = site_of.get(id(call))
            if site is not None and site.kind in ("direct", "self-method"):
                for target in site.targets:
                    parts.extend(self._sig_of_function(target, seen))
        return tuple(parts)

    # -- divergence reporting -------------------------------------------

    def _check_stmts(
        self,
        func: FunctionInfo,
        stmts: Sequence[ast.stmt],
        site_of: Dict[int, CallSite],
    ) -> Iterator[Finding]:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                then_sig = self._sig_of_stmts(stmt.body, site_of, frozenset())
                else_sig = self._sig_of_stmts(stmt.orelse, site_of, frozenset())
                if (
                    self._diverges(then_sig, else_sig)
                    and not definitely_terminates(stmt.body)
                    and not (stmt.orelse and definitely_terminates(stmt.orelse))
                ):
                    yield self._finding(
                        func.file,
                        stmt.lineno,
                        self._describe(func, then_sig, else_sig),
                    )
                yield from self._check_stmts(func, stmt.body, site_of)
                yield from self._check_stmts(func, stmt.orelse, site_of)
            elif isinstance(stmt, (ast.For, ast.While, ast.AsyncFor, ast.Try)):
                for block in (
                    getattr(stmt, "body", []),
                    getattr(stmt, "orelse", []),
                    getattr(stmt, "finalbody", []),
                ):
                    yield from self._check_stmts(func, block, site_of)
                for handler in getattr(stmt, "handlers", []):
                    yield from self._check_stmts(func, handler.body, site_of)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                yield from self._check_stmts(func, stmt.body, site_of)

    # -- divergence policy (overridden by CHX022) -----------------------

    def _diverges(self, then_sig: Tuple, else_sig: Tuple) -> bool:
        return then_sig != else_sig and bool(then_sig or else_sig)

    def _describe(
        self, func: FunctionInfo, then_sig: Tuple, else_sig: Tuple
    ) -> str:
        return (
            f"branches of this if reach different barrier "
            f"sequences in {func.name}: "
            f"{_render_sig(then_sig)} vs {_render_sig(else_sig)}; "
            f"a machine taking the short path deadlocks the others"
        )


def _is_barrier_wait(call: ast.Call) -> bool:
    chain = attr_chain(call.func)
    if chain is None or len(chain) < 2 or chain[-1] != "wait":
        return False
    return any("barrier" in part.lower() for part in chain[:-1])


def _render_sig(sig: Tuple) -> str:
    if not sig:
        return "[]"
    return "[" + ", ".join(
        part if isinstance(part, str) else "loop(...)" for part in sig
    ) + "]"


# ---------------------------------------------------------------------------
# CHX011: generator-process hygiene, whole-program
# ---------------------------------------------------------------------------


class CrossModuleProcessRule(DeepRule):
    """A generator function defined in *another module* called as a bare
    expression statement creates a process body and silently discards it
    — nothing ever runs.  CHX004 catches this within one file; this rule
    resolves the callee through imports, re-exports and ``self`` to
    cover the whole project.
    """

    rule_id = "CHX011"
    severity = "error"
    title = "cross-module generator process created but never scheduled"

    def run(self, ctx: DeepContext) -> Iterator[Finding]:
        for func in ctx.index.iter_functions():
            bare_calls = _bare_expression_calls(func.node)
            if not bare_calls:
                continue
            for site in ctx.graph.call_sites_in(func.qualname):
                if id(site.node) not in bare_calls:
                    continue
                if site.kind not in ("direct", "self-method"):
                    continue
                for target in site.targets:
                    callee = ctx.index.functions.get(target)
                    if callee is None or not callee.is_generator:
                        continue
                    if callee.module == func.module:
                        continue  # same file: CHX004's jurisdiction
                    yield self._finding(
                        func.file,
                        site.line,
                        f"call to generator '{target}' discards the process "
                        f"body; schedule it with sim.process(...) or iterate "
                        f"it with 'yield from'",
                    )


def _bare_expression_calls(func_node: ast.AST) -> Set[int]:
    """ids of Call nodes that are a whole expression statement."""
    out: Set[int] = set()
    stack = list(getattr(func_node, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            out.add(id(node.value))
        stack.extend(ast.iter_child_nodes(node))
    return out


# ---------------------------------------------------------------------------
# CHX012: static race candidates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RaceCandidate:
    """One sanitizer access site seen statically."""

    file: str
    line: int
    function: str  # enclosing def chain, best-effort
    kind: Optional[str]  # key tuple's first element when literal
    index: Optional[int]  # key tuple's second element when a literal int
    machine_literal: Optional[int]  # literal machine attribution, if any
    write: Optional[bool]  # literal write flag, if any
    label: Optional[str]

    def to_dict(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "function": self.function,
            "kind": self.kind,
            "index": self.index,
            "machine_literal": self.machine_literal,
            "write": self.write,
            "label": self.label,
        }


_SAN_RECEIVERS = frozenset({"_san", "san", "sanitizer", "_sanitizer"})


def collect_race_candidates(index: ProjectIndex) -> List[RaceCandidate]:
    """Every ``<sanitizer>.access(...)`` call site in the project.

    Scans full module trees (including nested defs, which the function
    index skips) so monkeypatch-style plants in tests are visible too.
    """
    candidates: List[RaceCandidate] = []
    for module in sorted(index.modules.values(), key=lambda m: m.file):
        stack: List[Tuple[ast.AST, str]] = [(module.tree, "<module>")]
        while stack:
            node, scope = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = node.name if scope == "<module>" else f"{scope}.{node.name}"
            if isinstance(node, ast.Call):
                candidate = _candidate_from_call(node, module, scope)
                if candidate is not None:
                    candidates.append(candidate)
            for child in ast.iter_child_nodes(node):
                stack.append((child, scope))
    candidates.sort(key=lambda c: (c.file, c.line))
    return candidates


def _candidate_from_call(
    call: ast.Call, module: ModuleInfo, scope: str
) -> Optional[RaceCandidate]:
    chain = attr_chain(call.func)
    if chain is None or len(chain) < 2 or chain[-1] != "access":
        return None
    receiver_terminal = chain[-2]
    if receiver_terminal not in _SAN_RECEIVERS and not any(
        part in _SAN_RECEIVERS for part in chain[:-1]
    ):
        return None

    def arg(position: int, keyword: str) -> Optional[ast.expr]:
        if len(call.args) > position:
            node = call.args[position]
            return None if isinstance(node, ast.Starred) else node
        for kw in call.keywords:
            if kw.arg == keyword:
                return kw.value
        return None

    key_node = arg(0, "key")
    kind: Optional[str] = None
    index_literal: Optional[int] = None
    if isinstance(key_node, ast.Tuple) and key_node.elts:
        first = key_node.elts[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            kind = first.value
        if len(key_node.elts) > 1:
            index_literal = parse_constant_int(key_node.elts[1])
    elif isinstance(key_node, ast.Constant) and isinstance(key_node.value, str):
        kind = key_node.value

    machine_node = arg(1, "machine")
    machine_literal = (
        parse_constant_int(machine_node) if machine_node is not None else None
    )
    write_node = arg(2, "write")
    write: Optional[bool] = None
    if isinstance(write_node, ast.Constant) and isinstance(write_node.value, bool):
        write = write_node.value
    label_node = arg(3, "label")
    label = (
        label_node.value
        if isinstance(label_node, ast.Constant)
        and isinstance(label_node.value, str)
        else None
    )
    return RaceCandidate(
        file=module.file,
        line=call.lineno,
        function=scope,
        kind=kind,
        index=index_literal,
        machine_literal=machine_literal,
        write=write,
        label=label,
    )


class StaticRaceCandidateRule(DeepRule):
    """Lockset-style static pass over sanitizer access sites.

    The full candidate list seeds ``run --sanitize --focus-from-check``
    (dynamic instrumentation focuses on statically flagged state kinds).
    *Findings* are reserved for statically-pinned suspects: a write
    whose machine attribution is a hard-coded literal cannot be the
    accessing engine's own identity (every legitimate engine access
    passes ``self.machine``), so it is either a planted race or a
    mis-attributed report that would corrupt the happens-before
    analysis.
    """

    rule_id = "CHX012"
    severity = "error"
    title = "statically attributed cross-machine write candidate"

    def run(self, ctx: DeepContext) -> Iterator[Finding]:
        for candidate in collect_race_candidates(ctx.index):
            if candidate.write is True and candidate.machine_literal is not None:
                where = (
                    f"key kind '{candidate.kind}'"
                    if candidate.kind is not None
                    else "an opaque key"
                )
                yield self._finding(
                    candidate.file,
                    candidate.line,
                    f"sanitizer write on {where} hard-codes machine "
                    f"{candidate.machine_literal} (in {candidate.function}); "
                    f"engine accesses must attribute to self.machine — "
                    f"literal attribution marks a race candidate",
                )


# ---------------------------------------------------------------------------
# CHX013: loop-carried dependence in an edge loop
# ---------------------------------------------------------------------------


class LoopCarriedDependenceRule(DeepRule):
    """A sequential loop-carried dependence in an edge kernel blocks
    vectorization: the loop cannot become a whole-chunk numpy operation
    until the dependence is restructured (prefix-scan, segmentation, or
    hoisting the stateful part out of the per-edge path).

    Only genuinely *sequential* dependences flag; reduction-style
    carries (``acc += e``, ``out.append(e)``) classify the loop as a
    segmented reduction, which the columnar rewrite handles with
    ``np.ufunc.at`` / sort-and-segment machinery.
    """

    rule_id = "CHX013"
    severity = "error"
    title = "loop-carried dependence in an edge loop blocks vectorization"

    def run(self, ctx: DeepContext) -> Iterator[Finding]:
        for func in hot_functions(ctx.index):
            for info in loop_infos_in(func):
                if info.classification != SEQUENTIAL:
                    continue
                deps = [d for d in info.carried if d.kind == "sequential"]
                names = ", ".join(sorted({d.name for d in deps}))
                detail = deps[0].detail if deps else ""
                yield self._finding(
                    info.file,
                    info.line,
                    f"edge loop in {func.name} carries a sequential "
                    f"dependence through {names}: {detail}; this blocks "
                    f"vectorization — restructure as a reduction or hoist "
                    f"the carried state out of the per-edge path",
                )


# ---------------------------------------------------------------------------
# CHX014: per-edge allocation / repeated attribute lookup in a hot loop
# ---------------------------------------------------------------------------


class HotLoopAllocationRule(DeepRule):
    """Per-iteration Python object allocation (dicts, lists, project
    objects) and repeated loop-invariant attribute lookups dominate
    interpreter cost in the edge hot path.  Both are hoistable today
    and disappear entirely under a columnar rewrite; the finding names
    the hoistable expression.
    """

    rule_id = "CHX014"
    severity = "warning"
    title = "per-edge allocation or repeated attribute lookup in a hot loop"

    def run(self, ctx: DeepContext) -> Iterator[Finding]:
        for func in hot_functions(ctx.index):
            module = ctx.index.modules.get(func.module)
            resolver = self._class_resolver(ctx, module) if module else None
            for info in loop_infos_in(func, class_resolver=resolver):
                if info.allocations:
                    alloc = info.allocations[0]
                    escape_note = (
                        " and escapes the loop (the rewrite must "
                        "materialize it as a column)"
                        if alloc.escapes
                        else ""
                    )
                    yield self._finding(
                        info.file,
                        info.line,
                        f"hot loop in {func.name} allocates "
                        f"'{alloc.expr}' every iteration{escape_note}; "
                        f"hoist the allocation or batch it per chunk",
                    )
                elif info.hoistable:
                    attr = info.hoistable[0]
                    yield self._finding(
                        info.file,
                        info.line,
                        f"hot loop in {func.name} re-reads the "
                        f"loop-invariant attribute chain '{attr.chain}' "
                        f"{attr.reads} times; bind it to a local before "
                        f"the loop",
                    )

    @staticmethod
    def _class_resolver(ctx: DeepContext, module):
        def resolver(call: ast.Call) -> bool:
            chain = attr_chain(call.func)
            if chain is None:
                return False
            from repro.analysis.flow.project import ClassInfo

            resolved = ctx.index.resolve_chain_in(module, chain)
            return isinstance(resolved, ClassInfo)

        return resolver


# ---------------------------------------------------------------------------
# CHX015: state captured by a would-be process boundary
# ---------------------------------------------------------------------------


class ProcessBoundaryCaptureRule(DeepRule):
    """Per-machine classes (``__init__`` takes a ``machine`` identity)
    become one-per-worker-process under the real-process backend.  Two
    capture patterns break that move: attributes bound to values
    ``pickle`` rejects (lambdas, generators, open files), and
    construction loops handing every machine the *same* object — state
    that aliases another machine's mutable state today and silently
    stops being shared under fork/spawn.
    """

    rule_id = "CHX015"
    severity = "warning"
    title = "per-machine state unpicklable or aliased across machines"

    def run(self, ctx: DeepContext) -> Iterator[Finding]:
        for capture in unpicklable_captures(ctx.index):
            yield self._finding(
                capture.file,
                capture.line,
                f"per-machine class {capture.cls.rsplit('.', 1)[-1]} "
                f"captures self.{capture.attr} as {capture.reason}; it "
                f"cannot cross a process boundary — pass a picklable "
                f"factory or rebuild it worker-side",
            )
        for site in aliased_constructions(ctx.index, ctx.graph):
            shared = ", ".join(site.shared)
            yield self._finding(
                site.file,
                site.line,
                f"per-machine class {site.cls.rsplit('.', 1)[-1]} is "
                f"constructed in a loop with shared argument(s) "
                f"[{shared}] (in {site.caller.rsplit('.', 1)[-1]}); every "
                f"machine aliases the same object — the process backend "
                f"must replace these with per-worker channels or copies",
            )


# ---------------------------------------------------------------------------
# CHX016: order-sensitive float accumulation outside the protocol
# ---------------------------------------------------------------------------

#: The gather-side kernels whose accumulation order the protocol must
#: pin (scatter produces, these fold).
_GATHER_FAMILY = frozenset(
    {"gather", "gather_chunk", "merge", "merge_accumulators"}
)

_CANONICAL_ORDER_CALL = "canonical_update_order"


class UnorderedReductionRule(DeepRule):
    """Float ``+=`` accumulation is order-sensitive (float addition is
    not associative).  Today the runtime replays updates in the
    canonical order of ``canonical_update_order`` before folding, so
    results are byte-identical; once reductions go parallel, any
    accumulation *not* routed through that ordering step becomes
    schedule-dependent.  Flags additive folds in gather-family kernels
    whose reduction order no caller fixes.
    """

    rule_id = "CHX016"
    severity = "warning"
    title = "order-sensitive float accumulation not fixed by the protocol"

    def run(self, ctx: DeepContext) -> Iterator[Finding]:
        for func in ctx.index.iter_functions():
            if func.name not in _GATHER_FAMILY:
                continue
            if not any(
                part in HOT_PACKAGES for part in func.module.split(".")
            ):
                continue
            if self._order_is_fixed(ctx, func):
                continue
            yield from self._additive_folds(func)

    def _order_is_fixed(self, ctx: DeepContext, func: FunctionInfo) -> bool:
        """The function itself, or a direct caller, sorts updates into
        canonical order before (or around) the fold."""
        if self._calls_canonical(ctx, func.qualname):
            return True
        for caller in ctx.graph.callers_of(func.qualname):
            if self._calls_canonical(ctx, caller):
                return True
        return False

    @staticmethod
    def _calls_canonical(ctx: DeepContext, qualname: str) -> bool:
        return any(
            site.name == _CANONICAL_ORDER_CALL
            for site in ctx.graph.call_sites_in(qualname)
        )

    def _additive_folds(self, func: FunctionInfo) -> Iterator[Finding]:
        for node in ast.walk(func.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
                node is not func.node
            ):
                continue
            if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                target = dump_expr(node.target)
                yield self._finding(
                    func.file,
                    node.lineno,
                    f"additive fold '{target} += …' in {func.name} has no "
                    f"protocol-fixed reduction order; float addition is "
                    f"not associative — route updates through "
                    f"canonical_update_order before folding, or switch "
                    f"to an order-insensitive combine",
                )
            elif isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if chain is not None and len(chain) >= 2 and (
                    chain[-2:] == ["add", "at"]
                ):
                    yield self._finding(
                        func.file,
                        node.lineno,
                        f"'{'.'.join(chain)}(…)' in {func.name} folds "
                        f"updates in buffer order with no protocol-fixed "
                        f"reduction order; float addition is not "
                        f"associative — sort with canonical_update_order "
                        f"first",
                    )


# ---------------------------------------------------------------------------
# CHX017: module-level mutable state shared across emulated machines
# ---------------------------------------------------------------------------


class SharedModuleStateRule(DeepRule):
    """A module-level mutable container read by code reachable from a
    per-machine class is shared by *every* emulated machine — invisible
    coupling in the single-process emulation, and a silent divergence
    (each worker gets its own copy) under the real-process backend.
    """

    rule_id = "CHX017"
    severity = "warning"
    title = "module-level mutable state reachable from per-machine code"

    def run(self, ctx: DeepContext) -> Iterator[Finding]:
        for shared in shared_mutable_globals(ctx.index, ctx.graph):
            yield self._finding(
                shared.file,
                shared.line,
                f"module-level mutable '{shared.name}' in {shared.module} "
                f"is read on a per-machine call path (via "
                f"{shared.via.rsplit('.', 1)[-1]}); machines share one "
                f"instance today and would silently diverge under real "
                f"processes — pass it through the constructor or freeze it",
            )


# ---------------------------------------------------------------------------
# CHX018: unseeded randomness in fault-injection / fuzzing code
# ---------------------------------------------------------------------------

#: Zero-argument constructions of these canonical targets seed from the
#: OS entropy pool — the schedule they drive can never be replayed.
_RNG_CONSTRUCTORS = frozenset(
    {"random.Random", "numpy.random.default_rng", "numpy.random.RandomState"}
)

#: Stdlib ``random`` attributes that are *types*, not the global-RNG
#: convenience functions (calling these is not a global-state draw).
_RANDOM_TYPES = frozenset({"Random", "SystemRandom"})


class UnseededRandomRule(DeepRule):
    """The chaos fuzzer's contract is that a ``(seed, episode)`` pair —
    or a shrunk reproducer plan — replays the exact same schedule.  One
    unseeded RNG anywhere in the fault-injection path silently breaks
    that: campaigns stop being reproducible and minimized fault plans
    stop reproducing their violation.

    Flags, in any module of the ``faults`` package or any ``fuzz*``
    module: zero-argument RNG construction (``random.Random()``,
    ``np.random.default_rng()``) and draws on the interpreter-global RNG
    (``random.random()``…), resolved through import aliases — which is
    what the per-file CHX002 cannot see (``import random as rnd``).
    """

    rule_id = "CHX018"
    severity = "error"
    title = "unseeded RNG in fault-injection/fuzzing code breaks replay"

    def run(self, ctx: DeepContext) -> Iterator[Finding]:
        for module in sorted(ctx.index.modules.values(), key=lambda m: m.file):
            if not self._in_scope(module.name):
                continue
            yield from self._scan_module(module)

    @staticmethod
    def _in_scope(module_name: str) -> bool:
        parts = module_name.split(".")
        return "faults" in parts or any(p.startswith("fuzz") for p in parts)

    def _scan_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = self._resolve(module, node.func)
            if dotted is None:
                continue
            if dotted in _RNG_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    yield self._finding(
                        module.file,
                        node.lineno,
                        f"{dotted.rsplit('.', 1)[-1]}() constructed without "
                        f"a seed in {module.name}; fault schedules must "
                        f"replay byte-for-byte — derive the seed from the "
                        f"campaign/config seed",
                    )
                continue
            head, _, leaf = dotted.rpartition(".")
            if head == "random" and leaf not in _RANDOM_TYPES:
                yield self._finding(
                    module.file,
                    node.lineno,
                    f"random.{leaf}() draws from the interpreter-global "
                    f"RNG in {module.name}; fault schedules must replay — "
                    f"thread a seeded random.Random through instead",
                )
            elif head == "numpy.random" and leaf not in (
                "default_rng", "RandomState"
            ):
                yield self._finding(
                    module.file,
                    node.lineno,
                    f"np.random.{leaf}() uses the legacy global NumPy RNG "
                    f"in {module.name}; fault schedules must replay — pass "
                    f"a seeded np.random.default_rng(seed) through instead",
                )

    @staticmethod
    def _resolve(module: ModuleInfo, func: ast.expr) -> Optional[str]:
        """Canonical dotted target of a call, through import aliases."""
        chain = attr_chain(func)
        if chain is None or not chain:
            return None
        root = module.imports.get(chain[0], chain[0])
        return ".".join([root] + chain[1:])


# ---------------------------------------------------------------------------
# CHX019–023: protocol-model rules (extracted state machines)
# ---------------------------------------------------------------------------


class UnhandledSendRule(DeepRule):
    """A send whose destination service has no receive loop dispatching
    that message kind: the message is delivered into a mailbox nobody
    drains for it, and the sender's reply wait hangs (or the receiver's
    dispatch raises on the unknown kind).  Only send sites whose service
    and kind both resolve to literals are judged — an opaque expression
    is never proof of absence.
    """

    rule_id = "CHX019"
    severity = "error"
    title = "send with no matching receive handler"

    def run(self, ctx: DeepContext) -> Iterator[Finding]:
        model = ctx.protocol()
        for op in model.all_sends():
            if op.service is None or not op.kinds_complete or not op.kinds:
                continue
            if not model.handlers_for(op.service):
                # No receive loop registered for the service at all —
                # covered per kind below, but name the service once.
                yield self._finding(
                    op.file,
                    op.line,
                    f"{op.qualname} sends to service {op.service!r} "
                    f"but no receive loop drains that mailbox",
                )
                continue
            for kind in op.kinds:
                if not model.handles(op.service, kind):
                    yield self._finding(
                        op.file,
                        op.line,
                        f"{op.qualname} sends kind {kind!r} to service "
                        f"{op.service!r} but no receive loop on that "
                        f"service dispatches it; the message is dropped "
                        f"on the floor (or kills the dispatcher)",
                    )


class UnfencedReceiveRule(DeepRule):
    """An epoch-aware role's receive loop without an epoch fence: a
    straggling message from before a rollback (a stale reply, a zombie
    peer's steal request) is executed against post-recovery state and
    silently corrupts it.  Roles that never track a recovery epoch
    (e.g. the failure detector) are exempt — they have nothing to fence.
    """

    rule_id = "CHX020"
    severity = "error"
    title = "receive loop missing epoch guard"

    def run(self, ctx: DeepContext) -> Iterator[Finding]:
        for loop in ctx.protocol().all_receives():
            if loop.epoch_aware and not loop.epoch_guard:
                service = (
                    f"service {loop.service!r}"
                    if loop.service is not None
                    else "its mailbox"
                )
                yield self._finding(
                    loop.file,
                    loop.line,
                    f"{loop.qualname} drains {service} without comparing "
                    f"message.epoch, but {loop.role} tracks a recovery "
                    f"epoch; a stale-epoch straggler would be executed "
                    f"against post-rollback state",
                )


class UntimedWaitRule(DeepRule):
    """A process blocks on a remote delivery (or a reply event armed by
    a remote request) with no timeout or liveness escape anywhere in the
    function: if the peer fail-stops, the message is lost and the
    process hangs forever — under the real-process backend that is a
    cluster deadlock, not a simulation artifact.
    """

    rule_id = "CHX021"
    severity = "warning"
    title = "blocking wait with no timeout/liveness path"

    def run(self, ctx: DeepContext) -> Iterator[Finding]:
        for wait in ctx.protocol().all_waits():
            if wait.remote and not wait.has_timeout:
                yield self._finding(
                    wait.file,
                    wait.line,
                    f"{wait.qualname} yields on {wait.target!r} (a remote "
                    f"delivery) with no any_of+timeout or backoff escape "
                    f"in the function; a fail-stopped peer hangs this "
                    f"process forever",
                )


class LopsidedArriveRule(BarrierPairingRule):
    """One branch of an if reaches a barrier wait and its sibling does
    not (transitively over the call graph).  This is the coarse, always-
    fatal subset of CHX010: the machines taking the short path never
    arrive, so the barrier waits forever for them.  CHX010 flags any
    sequence mismatch; this rule fires only on presence-vs-absence, the
    shape the protocol model checker proves deadlocking.
    """

    rule_id = "CHX022"
    severity = "error"
    title = "barrier arrive reachable on one branch but not its sibling"

    @staticmethod
    def _has_wait(sig: Tuple) -> bool:
        for part in sig:
            if part == "wait":
                return True
            if isinstance(part, tuple) and LopsidedArriveRule._has_wait(part):
                return True
        return False

    def _diverges(self, then_sig: Tuple, else_sig: Tuple) -> bool:
        return self._has_wait(then_sig) != self._has_wait(else_sig)

    def _describe(
        self, func: FunctionInfo, then_sig: Tuple, else_sig: Tuple
    ) -> str:
        arriving = "first" if self._has_wait(then_sig) else "second"
        return (
            f"only the {arriving} branch of this if arrives at a barrier "
            f"in {func.name} ({_render_sig(then_sig)} vs "
            f"{_render_sig(else_sig)}); machines taking the other path "
            f"never arrive and the barrier blocks the cluster"
        )


class GhostKindRule(DeepRule):
    """A transport :class:`Message` constructed with a kind the
    extracted protocol model has never heard of: no send site emits it
    and no receive loop dispatches it, so it is either dead vocabulary
    or a hand-rolled message that bypasses the modeled protocol (and
    every invariant the model checker proves about it).
    """

    rule_id = "CHX023"
    severity = "warning"
    title = "message kind constructed but absent from the extracted model"

    #: kind's position among Message's constructor fields
    #: (src, dst, service, kind, ...).
    _KIND_POSITION = 3

    def run(self, ctx: DeepContext) -> Iterator[Finding]:
        model = ctx.protocol()
        alphabet = model.alphabet()
        for func in ctx.index.iter_functions():
            module = ctx.index.modules.get(func.module)
            if module is None:
                continue
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Call):
                    continue
                if not self._is_message_construction(ctx, module, node):
                    continue
                kind = self._literal_kind(node)
                if kind is None or kind in alphabet:
                    continue
                yield self._finding(
                    func.file,
                    node.lineno,
                    f"{func.qualname} constructs a Message of kind "
                    f"{kind!r}, which no modeled send or receive loop "
                    f"mentions; it bypasses the extracted protocol",
                )

    def _is_message_construction(
        self, ctx: DeepContext, module: ModuleInfo, call: ast.Call
    ) -> bool:
        chain = attr_chain(call.func)
        if chain is None or chain[-1] != "Message":
            return False
        target = ctx.index.resolve_chain_in(module, chain)
        name = getattr(target, "qualname", "")
        return name.endswith(".Message") or chain == ["Message"]

    def _literal_kind(self, call: ast.Call) -> Optional[str]:
        expr: Optional[ast.expr] = None
        for kw in call.keywords:
            if kw.arg == "kind":
                expr = kw.value
        if expr is None and len(call.args) > self._KIND_POSITION:
            expr = call.args[self._KIND_POSITION]
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value
        return None


def default_deep_rules() -> List[DeepRule]:
    return [
        InterproceduralTaintRule(),
        GrantPairingRule(),
        BarrierPairingRule(),
        CrossModuleProcessRule(),
        StaticRaceCandidateRule(),
        LoopCarriedDependenceRule(),
        HotLoopAllocationRule(),
        ProcessBoundaryCaptureRule(),
        UnorderedReductionRule(),
        SharedModuleStateRule(),
        UnseededRandomRule(),
        UnhandledSendRule(),
        UnfencedReceiveRule(),
        UntimedWaitRule(),
        LopsidedArriveRule(),
        GhostKindRule(),
    ]


#: rule id -> title, for docs/tests (mirrors rules.RULE_TABLE).
DEEP_RULE_TABLE: Dict[str, str] = {
    rule.rule_id: rule.title for rule in default_deep_rules()
}


__all__ = [
    "ANALYZER_VERSION",
    "DEEP_RULE_TABLE",
    "DEEP_SIM_PACKAGES",
    "BarrierPairingRule",
    "CrossModuleProcessRule",
    "DeepContext",
    "DeepRule",
    "GhostKindRule",
    "GrantPairingRule",
    "HotLoopAllocationRule",
    "InterproceduralTaintRule",
    "LoopCarriedDependenceRule",
    "LopsidedArriveRule",
    "ProcessBoundaryCaptureRule",
    "RaceCandidate",
    "SharedModuleStateRule",
    "StaticRaceCandidateRule",
    "UnfencedReceiveRule",
    "UnhandledSendRule",
    "UnorderedReductionRule",
    "UnseededRandomRule",
    "UntimedWaitRule",
    "collect_race_candidates",
    "default_deep_rules",
]

"""Finding baselines: the grandfathering ratchet for ``check``.

New rules land against a codebase with *known* findings — the
sequential kernels CHX013 flags today are exactly the worklist the
vectorization arc burns down, not regressions.  The ratchet lets a
rule ship strict from day one:

1. ``check --deep --baseline FILE --write-baseline`` records every
   current finding as a ``(file, rule, fingerprint)`` entry;
2. later runs with ``--baseline FILE`` suppress exactly those entries
   and exit non-zero only on *new* findings;
3. fixing a grandfathered finding and rewriting the baseline shrinks
   the file — the ratchet only ever tightens.

Fingerprints hash the finding's file, rule and message with line
numbers normalized out (both the finding's own line and any ``line N``
references inside the message), so unrelated edits that shift code
don't resurrect grandfathered findings.
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.findings import Finding

#: Version of the baseline JSON document.
BASELINE_VERSION = 1

_LINE_REF = re.compile(r"\bline \d+\b")


def fingerprint(finding: Finding) -> str:
    """Line-stable identity of one finding."""
    message = _LINE_REF.sub("line N", finding.message)
    digest = hashlib.sha256()
    digest.update(finding.file.encode())
    digest.update(b"\0")
    digest.update(finding.rule_id.encode())
    digest.update(b"\0")
    digest.update(message.encode())
    return digest.hexdigest()[:16]


def write_baseline(findings: Iterable[Finding], path: str) -> int:
    """Write the baseline document; returns the entry count."""
    entries = sorted(
        {
            (f.file, f.rule_id, fingerprint(f))
            for f in findings
        }
    )
    document = {
        "baseline_version": BASELINE_VERSION,
        "tool": "chaos-repro check --write-baseline",
        "entries": [
            {"file": file, "rule": rule, "fingerprint": print_}
            for file, rule, print_ in entries
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def load_baseline(path: str) -> Set[Tuple[str, str, str]]:
    """The ``(file, rule, fingerprint)`` entry set of a baseline file."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    version = document.get("baseline_version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path}: version {version!r} != {BASELINE_VERSION}"
        )
    entries = set()
    for entry in document.get("entries", ()):
        entries.add((entry["file"], entry["rule"], entry["fingerprint"]))
    return entries


def split_new(
    findings: Iterable[Finding], baseline: Set[Tuple[str, str, str]]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into (new, grandfathered) against a baseline."""
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in findings:
        key = (finding.file, finding.rule_id, fingerprint(finding))
        if key in baseline:
            grandfathered.append(finding)
        else:
            new.append(finding)
    return new, grandfathered


def baseline_stats(
    findings: Iterable[Finding], baseline: Set[Tuple[str, str, str]]
) -> Dict[str, int]:
    """Summary counts for reporting: entries, matched, new, stale."""
    new, grandfathered = split_new(list(findings), baseline)
    matched_keys = {
        (f.file, f.rule_id, fingerprint(f)) for f in grandfathered
    }
    return {
        "entries": len(baseline),
        "matched": len(matched_keys),
        "new": len(new),
        "stale": len(baseline) - len(matched_keys),
    }


__all__ = [
    "BASELINE_VERSION",
    "baseline_stats",
    "fingerprint",
    "load_baseline",
    "split_new",
    "write_baseline",
]

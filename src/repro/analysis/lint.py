"""The AST lint engine: rules, file contexts and suppression.

The engine parses each file once and walks the tree once; every
:class:`Rule` subscribes to the node types it cares about via
``node_types`` and yields ``(line, message)`` pairs from
:meth:`Rule.check`.  Package scoping (a rule that only applies inside
the simulated-clock packages, say) goes through
:meth:`Rule.applies`, which sees the :class:`FileContext`.

Suppression is inline and must name the rule::

    t0 = time.time()  # chaos: ignore[CHX001] host-side profiling only

Multiple ids separate with commas: ``# chaos: ignore[CHX001,CHX002]``.
Suppressed findings are counted (and reported in the summary) but do
not fail the check.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

from repro.analysis.findings import Finding

#: Packages whose code runs under the simulated clock: wall-clock reads
#: there silently corrupt timing results instead of failing tests.
SIM_PACKAGES = frozenset({"core", "sim", "store", "net", "obs", "faults"})

#: Packages holding compute/algorithm code, which must reach storage
#: only through the StorageEngine protocol (never Device/backend).
COMPUTE_PACKAGES = frozenset({"core", "algorithms"})

_SUPPRESS_RE = re.compile(r"#\s*chaos:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


class FileContext:
    """Everything a rule may need to know about the file being linted."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.parts: Tuple[str, ...] = PurePath(path).parts

    def in_packages(self, packages: frozenset) -> bool:
        """True if any path component names one of ``packages``.

        Matches both real tree paths (``src/repro/core/compute.py``)
        and test fixtures laid out under a bare package directory.
        """
        return any(part in packages for part in self.parts)

    def suppressions(self) -> Dict[int, Set[str]]:
        """Map of line number -> rule ids suppressed on that line."""
        table: Dict[int, Set[str]] = {}
        for number, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                ids = {part.strip() for part in match.group(1).split(",")}
                table[number] = {i for i in ids if i}
        return table

    def effective_suppressions(self, tree: ast.Module) -> Dict[int, Set[str]]:
        """Suppressions widened to statement spans.

        Findings report at a statement's *first* line, but a multi-line
        call naturally carries its comment on the closing paren.  A
        suppression anywhere within a simple statement's line span also
        suppresses at the statement's first line.  Compound statements
        (if/for/try/def/…) only widen over their *header* lines — a
        comment buried in a function body must not silence findings on
        the ``def`` line.

        A multi-line loop header whose body starts on the header's own
        closing line (``for x in (\\n    xs\\n): f(x)  # chaos: …``)
        still counts that line as header: the trailing comment sits on
        the line the header ends on, so it must reach findings anchored
        at the ``for``.  Body lines *below* the header remain out of
        scope.
        """
        raw = self.suppressions()
        table: Dict[int, Set[str]] = {line: set(ids) for line, ids in raw.items()}
        if not raw:
            return table
        for node in ast.walk(tree):
            if not isinstance(node, ast.stmt):
                continue
            start = node.lineno
            end = getattr(node, "end_lineno", None) or start
            inner = [
                block[0]
                for name in ("body", "orelse", "finalbody")
                if (block := getattr(node, name, None))
                and isinstance(block, list)
                and block
            ] + list(getattr(node, "handlers", []))
            if inner:
                first = min(inner, key=lambda n: (n.lineno, n.col_offset))
                end = max(start, first.lineno - 1)
                if first.lineno > start and self._header_spills_onto(first):
                    # One-liner body sharing the header's closing line:
                    # that line is still (also) a header line.
                    end = first.lineno
            for line in range(start + 1, end + 1):
                if line in raw:
                    table.setdefault(start, set()).update(raw[line])
        return table

    def _header_spills_onto(self, first_inner: ast.AST) -> bool:
        """True when a compound statement's header text extends onto
        the line its first inner statement starts on (the inner
        statement is prefixed by the header's closing tokens)."""
        lineno = getattr(first_inner, "lineno", 0)
        col = getattr(first_inner, "col_offset", 0)
        if not 1 <= lineno <= len(self.lines):
            return False
        prefix = self.lines[lineno - 1][:col].strip()
        return prefix.endswith(":")


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id``, ``severity``, ``title`` and
    ``node_types``, then implement :meth:`check` to yield
    ``(line, message)`` pairs for each offending node.  Per-file state
    (e.g. a table of known generator functions) is built in
    :meth:`begin_file`.
    """

    rule_id: str = "CHX000"
    severity: str = "error"
    title: str = ""
    #: AST node classes this rule wants to inspect.
    node_types: Tuple[Type[ast.AST], ...] = ()

    def applies(self, ctx: FileContext) -> bool:
        """Whether the rule runs on this file at all (package scoping)."""
        return True

    def begin_file(self, ctx: FileContext, tree: ast.Module) -> None:
        """Hook to build per-file state before the walk."""

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Tuple[int, str]]:
        """Yield ``(line, message)`` for each violation at ``node``."""
        return iter(())


@dataclass
class LintResult:
    """Outcome of a lint run: active findings plus suppressed ones."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_checked += other.files_checked


class LintEngine:
    """Parses files and drives every rule over each AST once."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None):
        if rules is None:
            from repro.analysis.rules import default_rules

            rules = default_rules()
        self.rules: List[Rule] = list(rules)

    def rule_ids(self) -> List[str]:
        return [rule.rule_id for rule in self.rules]

    # -- single source unit -------------------------------------------

    def check_source(self, source: str, path: str = "<string>") -> LintResult:
        """Lint one source string (the path drives package scoping)."""
        result = LintResult(files_checked=1)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            result.findings.append(
                Finding(
                    file=path,
                    line=error.lineno or 1,
                    rule_id="CHX000",
                    severity="error",
                    message=f"syntax error: {error.msg}",
                )
            )
            return result

        ctx = FileContext(path, source)
        active = [rule for rule in self.rules if rule.applies(ctx)]
        if not active:
            return result
        for rule in active:
            rule.begin_file(ctx, tree)

        dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in active:
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append(rule)

        raw: List[Finding] = []
        seen: Set[Tuple[str, int, str]] = set()
        for node in ast.walk(tree):
            for rule in dispatch.get(type(node), ()):
                for line, message in rule.check(node, ctx):
                    key = (rule.rule_id, line, message)
                    if key in seen:
                        continue
                    seen.add(key)
                    raw.append(
                        Finding(
                            file=path,
                            line=line,
                            rule_id=rule.rule_id,
                            severity=rule.severity,
                            message=message,
                        )
                    )

        suppressions = ctx.effective_suppressions(tree)
        for finding in sorted(raw):
            if finding.rule_id in suppressions.get(finding.line, ()):
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)
        return result

    # -- trees of files -----------------------------------------------

    def check_file(self, path: str) -> LintResult:
        source = Path(path).read_text(encoding="utf-8")
        return self.check_source(source, path=str(path))

    def check_paths(self, paths: Iterable[str]) -> LintResult:
        """Lint every ``*.py`` under each path (files or directories)."""
        result = LintResult()
        for entry in paths:
            root = Path(entry)
            if root.is_dir():
                files = sorted(
                    p
                    for p in root.rglob("*.py")
                    if "__pycache__" not in p.parts
                )
            else:
                files = [root]
            for file_path in files:
                result.extend(self.check_file(str(file_path)))
        result.findings.sort()
        result.suppressed.sort()
        return result

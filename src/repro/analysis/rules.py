"""Codebase-specific determinism rules (CHX001 … CHX007).

Each rule targets one way a change can silently break the invariant
that a run is a deterministic function of ``(config, seed)``:

=======  ==========================================================
CHX001   wall-clock calls inside simulated-clock packages
CHX002   unseeded global-state randomness (``random.*``,
         ``np.random.<fn>``) instead of a passed-in generator
CHX003   compute/algorithm code reaching past the StorageEngine into
         ``Device``/backend chunk internals
CHX004   simulator-process hygiene: unscheduled generator processes,
         discarded ``wait()`` events
CHX005   iteration over sets feeding the simulated schedule; mutable
         default arguments in engine code
CHX006   broad exception handlers (bare ``except:`` /
         ``except Exception:``) in engine packages that can swallow
         the simulator's process-kill ``Interrupt``
CHX007   ad-hoc ``print``/``logging`` telemetry in engine packages
         instead of Tracer spans / CounterRegistry series
=======  ==========================================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.lint import (
    COMPUTE_PACKAGES,
    SIM_PACKAGES,
    FileContext,
    Rule,
)


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """Dotted-name chain of an Attribute/Name expression, or None.

    ``time.perf_counter`` -> ["time", "perf_counter"];  chains broken by
    calls or subscripts return None (handled conservatively).
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _base_terminal(node: ast.AST) -> Optional[str]:
    """The attribute name (or bare name) the chain hangs off.

    ``self.config.device`` -> "config";  ``store.device`` -> "store".
    """
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class WallClockRule(Rule):
    """CHX001: wall-clock time in packages ordered by the simulated clock."""

    rule_id = "CHX001"
    severity = "error"
    title = "wall-clock call in simulated-clock package"
    node_types = (ast.Call, ast.Import, ast.ImportFrom)

    _TIME_FNS = frozenset(
        {"time", "time_ns", "sleep", "perf_counter", "perf_counter_ns",
         "monotonic", "monotonic_ns", "process_time", "process_time_ns",
         "clock"}
    )
    _DATETIME_FNS = frozenset({"now", "utcnow", "today"})

    def applies(self, ctx: FileContext) -> bool:
        # repro.obs.hostclock is the single sanctioned host-clock entry
        # point (host profiling); tests/test_host.py pins the exemption
        # to exactly this one module.
        if ctx.parts and ctx.parts[-1] == "hostclock.py":
            return False
        return ctx.in_packages(SIM_PACKAGES)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Tuple[int, str]]:
        if isinstance(node, ast.Import):
            # A bare ``import time`` would let wall-clock calls in via
            # the module object, sidestepping the call check below.
            for alias in node.names:
                if alias.name == "time" or alias.name.startswith("time."):
                    yield (
                        node.lineno,
                        "importing 'time' in a simulated-clock package; "
                        "host-side timing must go through "
                        "repro.obs.hostclock, sim timing through "
                        "Simulator.now",
                    )
            return
        if isinstance(node, ast.ImportFrom):
            if node.module == "time":
                bad = sorted(
                    alias.name for alias in node.names
                    if alias.name in self._TIME_FNS
                )
                if bad:
                    yield (
                        node.lineno,
                        f"importing wall-clock function(s) {', '.join(bad)} "
                        f"from 'time' in a simulated-clock package; use "
                        f"Simulator.now / timeout events",
                    )
            return
        chain = _attr_chain(node.func)
        if not chain or len(chain) < 2:
            return
        module, fn = chain[-2], chain[-1]
        if module == "time" and fn in self._TIME_FNS:
            yield (
                node.lineno,
                f"wall-clock call time.{fn}() in a simulated-clock package; "
                f"all timing must come from the simulated clock "
                f"(Simulator.now)",
            )
        elif module in ("datetime", "date") and fn in self._DATETIME_FNS:
            yield (
                node.lineno,
                f"wall-clock call {module}.{fn}() in a simulated-clock "
                f"package; all timing must come from the simulated clock",
            )


class GlobalRandomRule(Rule):
    """CHX002: global-state randomness instead of a passed-in generator."""

    rule_id = "CHX002"
    severity = "error"
    title = "unseeded global-state randomness"
    node_types = (ast.Call, ast.ImportFrom)

    #: Constructors / types that create *owned* seeded state are fine.
    _STDLIB_OK = frozenset({"Random", "SystemRandom"})
    _NUMPY_OK = frozenset({"Generator", "SeedSequence", "default_rng",
                           "BitGenerator", "PCG64", "Philox"})

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Tuple[int, str]]:
        if isinstance(node, ast.ImportFrom):
            if node.module == "random":
                bad = sorted(
                    alias.name for alias in node.names
                    if alias.name not in self._STDLIB_OK
                )
                if bad:
                    yield (
                        node.lineno,
                        f"importing global-state function(s) "
                        f"{', '.join(bad)} from 'random'; construct a "
                        f"seeded random.Random(seed) instead",
                    )
            elif node.module == "numpy.random":
                bad = sorted(
                    alias.name for alias in node.names
                    if alias.name not in self._NUMPY_OK
                )
                if bad:
                    yield (
                        node.lineno,
                        f"importing global-state function(s) "
                        f"{', '.join(bad)} from 'numpy.random'; use "
                        f"np.random.default_rng(seed)",
                    )
            return

        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        # random.<fn>(...) on the stdlib module object.
        if isinstance(base, ast.Name) and base.id == "random":
            if func.attr not in self._STDLIB_OK:
                yield (
                    node.lineno,
                    f"random.{func.attr}() mutates interpreter-global RNG "
                    f"state; thread a seeded random.Random through instead",
                )
        # np.random.<fn>(...) / numpy.random.<fn>(...) legacy global API.
        elif (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in ("np", "numpy")
        ):
            if func.attr not in self._NUMPY_OK:
                yield (
                    node.lineno,
                    f"np.random.{func.attr}() uses the legacy global "
                    f"NumPy RNG; pass an np.random.Generator "
                    f"(default_rng(seed)) through instead",
                )


class StorageMediationRule(Rule):
    """CHX003: compute code must reach storage via StorageEngine only."""

    rule_id = "CHX003"
    severity = "error"
    title = "compute code bypasses StorageEngine mediation"
    node_types = (ast.Attribute, ast.Assign)

    #: Reading static spec fields off a DeviceSpec is configuration, not
    #: data-plane access.
    _SPEC_ATTRS = frozenset(
        {"name", "bandwidth", "latency", "capacity", "chunk_time",
         "track_label"}
    )
    #: Bases that hold a DeviceSpec (configuration), not a live device.
    _CONFIG_BASES = frozenset({"config", "cfg", "device_spec", "spec"})

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_packages(COMPUTE_PACKAGES)

    def _reach_through(self, node: ast.Attribute) -> Optional[Tuple[int, str]]:
        """Flag ``X.device.Y`` / ``X.backend.Y`` reach-through chains."""
        inner = node.value
        if not isinstance(inner, ast.Attribute):
            return None
        if inner.attr not in ("device", "backend"):
            return None
        if _base_terminal(inner.value) in self._CONFIG_BASES:
            return None
        if inner.attr == "device" and node.attr in self._SPEC_ATTRS:
            return None
        return (
            node.lineno,
            f"reaching through .{inner.attr}.{node.attr} bypasses the "
            f"StorageEngine protocol; add or use a StorageEngine method "
            f"instead (read-once mediation, Section 6.2)",
        )

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Tuple[int, str]]:
        if isinstance(node, ast.Attribute):
            found = self._reach_through(node)
            if found:
                yield found
            return
        # Aliasing a live device/backend defeats the chain check above,
        # so flag the alias itself: ``dev = store.device``.
        targets = [node.value]
        if isinstance(node.value, ast.Tuple):
            targets = list(node.value.elts)
        for value in targets:
            if (
                isinstance(value, ast.Attribute)
                and value.attr in ("device", "backend")
                and _base_terminal(value.value) not in self._CONFIG_BASES
            ):
                yield (
                    node.lineno,
                    f"aliasing a live .{value.attr} handle in compute code; "
                    f"go through StorageEngine accessors instead",
                )


class ProcessHygieneRule(Rule):
    """CHX004: simulator processes and wait events must not be dropped."""

    rule_id = "CHX004"
    severity = "error"
    title = "simulator-process hygiene"
    node_types = (ast.Expr,)

    _WAIT_METHODS = frozenset({"wait"})

    def __init__(self):
        self._generators: Set[str] = set()

    def begin_file(self, ctx: FileContext, tree: ast.Module) -> None:
        """Collect names of generator functions defined in this file."""
        self._generators = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._is_generator(node):
                    self._generators.add(node.name)

    @staticmethod
    def _is_generator(func: ast.AST) -> bool:
        """Yield/YieldFrom in the function's own body (not nested defs)."""
        body = list(getattr(func, "body", []))
        stack = body[:]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue  # separate scope
            stack.extend(ast.iter_child_nodes(node))
        return False

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Tuple[int, str]]:
        value = node.value  # type: ignore[attr-defined]
        if not isinstance(value, ast.Call):
            return
        func = value.func
        # (a) A discarded wait(): the caller never observes the release.
        if (
            isinstance(func, ast.Attribute)
            and func.attr in self._WAIT_METHODS
        ):
            yield (
                value.lineno,
                f"event returned by {func.attr}() is discarded; a process "
                f"must yield it (or subscribe to it) or the release is "
                f"silently lost",
            )
            return
        # (b) A generator process called but never scheduled: calling a
        # generator function only *creates* the generator — without
        # sim.process(...) or ``yield from`` it never runs.
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in self._generators:
            yield (
                value.lineno,
                f"generator process {name}() is called but its result is "
                f"discarded; wrap it in sim.process(...) or drive it with "
                f"'yield from'",
            )


class NondetOrderRule(Rule):
    """CHX005: set-order iteration and mutable defaults in engine code."""

    rule_id = "CHX005"
    severity = "error"
    title = "nondeterministic ordering hazard in engine code"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.For,
                  ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_packages(SIM_PACKAGES)

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        ):
            return True
        return False

    def _check_defaults(self, node) -> Iterator[Tuple[int, str]]:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set")
            ):
                mutable = True
            if mutable:
                yield (
                    default.lineno,
                    f"mutable default argument in engine code "
                    f"(def {node.name}): state leaks across simulations "
                    f"and breaks (config, seed) determinism",
                )

    def _check_set_assign_iteration(self, node) -> Iterator[Tuple[int, str]]:
        """Names assigned a set in this scope, then iterated directly."""
        set_names: Set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Assign) and self._is_set_expr(child.value):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        set_names.add(target.id)
        if not set_names:
            return
        for child in ast.walk(node):
            if (
                isinstance(child, ast.For)
                and isinstance(child.iter, ast.Name)
                and child.iter.id in set_names
            ):
                yield (
                    child.lineno,
                    f"iterating over set {child.iter.id!r}: set order is "
                    f"hash-dependent and can reorder the simulated "
                    f"schedule; iterate a list or sorted(...) instead",
                )

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Tuple[int, str]]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from self._check_defaults(node)
            yield from self._check_set_assign_iteration(node)
            return
        if isinstance(node, ast.For):
            iters = [node.iter]
        else:  # comprehension
            iters = [gen.iter for gen in node.generators]
        for expr in iters:
            if self._is_set_expr(expr):
                yield (
                    expr.lineno,
                    "iterating directly over a set: set order is "
                    "hash-dependent and can reorder the simulated "
                    "schedule; iterate a list or sorted(...) instead",
                )


class BroadExceptRule(Rule):
    """CHX006: broad exception handlers that can swallow ``Interrupt``.

    The simulator kills a process by throwing
    :class:`repro.sim.engine.Interrupt` (an ``Exception`` subclass) into
    it.  A bare ``except:`` or ``except Exception:`` in engine code
    catches that kill, so a fenced process keeps running as a zombie —
    exactly the bug the fault injector's machine crashes would expose
    nondeterministically.  A handler is fine if it re-raises (bare
    ``raise``) so the kill still propagates.
    """

    rule_id = "CHX006"
    severity = "error"
    title = "broad except can swallow simulator Interrupt"
    node_types = (ast.ExceptHandler,)

    _BROAD = frozenset({"Exception", "BaseException"})

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_packages(SIM_PACKAGES)

    @classmethod
    def _broad_names(cls, node: ast.AST) -> List[str]:
        exprs = node.elts if isinstance(node, ast.Tuple) else [node]
        names = []
        for expr in exprs:
            chain = _attr_chain(expr)
            if chain and chain[-1] in cls._BROAD:
                names.append(chain[-1])
        return names

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        """True if the handler body contains a bare ``raise``."""
        for child in ast.walk(handler):
            if isinstance(child, ast.Raise) and child.exc is None:
                return True
        return False

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Tuple[int, str]]:
        if self._reraises(node):
            return
        if node.type is None:
            yield (
                node.lineno,
                "bare 'except:' in an engine package catches the "
                "simulator's process-kill Interrupt; catch specific "
                "exceptions or re-raise with a bare 'raise'",
            )
            return
        for name in self._broad_names(node.type):
            yield (
                node.lineno,
                f"'except {name}:' in an engine package swallows the "
                f"simulator's process-kill Interrupt (an Exception "
                f"subclass); catch specific exceptions or re-raise "
                f"with a bare 'raise'",
            )


class AdHocTelemetryRule(Rule):
    """CHX007: ad-hoc ``print``/``logging`` telemetry in engine packages.

    Engine code must emit observations through the structured channels —
    :class:`repro.obs.Tracer` spans/instants and
    :class:`repro.obs.CounterRegistry` time series — so every signal is
    timestamped on the simulated clock, lands in the exported trace, and
    stays byte-deterministic.  A stray ``print`` (or ``logging`` call,
    or direct ``sys.stdout``/``sys.stderr`` write) bypasses all of that:
    it interleaves wall-clock-ordered text with the CLI's own output and
    is invisible to ``trace-report`` and the bench snapshots.
    """

    rule_id = "CHX007"
    severity = "error"
    title = "ad-hoc telemetry bypasses Tracer/CounterRegistry"
    node_types = (ast.Call, ast.Import, ast.ImportFrom)

    _STREAMS = frozenset({"stdout", "stderr"})

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_packages(SIM_PACKAGES)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Tuple[int, str]]:
        if isinstance(node, ast.Import):
            bad = sorted(
                alias.name for alias in node.names
                if alias.name == "logging" or alias.name.startswith("logging.")
            )
            if bad:
                yield (
                    node.lineno,
                    "importing 'logging' in an engine package; emit "
                    "telemetry through Tracer spans/instants or "
                    "CounterRegistry series instead",
                )
            return
        if isinstance(node, ast.ImportFrom):
            if node.module == "logging" or (
                node.module or ""
            ).startswith("logging."):
                yield (
                    node.lineno,
                    "importing from 'logging' in an engine package; emit "
                    "telemetry through Tracer spans/instants or "
                    "CounterRegistry series instead",
                )
            return
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            yield (
                node.lineno,
                "print() in an engine package; record the observation as "
                "a Tracer span/instant or a CounterRegistry sample so it "
                "is simulated-clock-stamped and lands in the trace",
            )
            return
        chain = _attr_chain(func)
        if not chain or len(chain) < 2:
            return
        if chain[0] == "logging":
            yield (
                node.lineno,
                f"logging call {'.'.join(chain)}() in an engine package; "
                f"emit telemetry through Tracer/CounterRegistry instead",
            )
        elif (
            chain[-1] in ("write", "writelines")
            and len(chain) >= 2
            and chain[-2] in self._STREAMS
        ):
            yield (
                node.lineno,
                f"direct {chain[-2]}.{chain[-1]}() in an engine package; "
                f"emit telemetry through Tracer/CounterRegistry instead",
            )


def default_rules() -> List[Rule]:
    """Fresh instances of every CHX rule (rules hold per-file state)."""
    return [
        WallClockRule(),
        GlobalRandomRule(),
        StorageMediationRule(),
        ProcessHygieneRule(),
        NondetOrderRule(),
        BroadExceptRule(),
        AdHocTelemetryRule(),
    ]


#: Rule classes, for introspection / docs.
DEFAULT_RULES = (
    WallClockRule,
    GlobalRandomRule,
    StorageMediationRule,
    ProcessHygieneRule,
    NondetOrderRule,
    BroadExceptRule,
    AdHocTelemetryRule,
)

#: Mapping rule id -> one-line description (the README rule table).
RULE_TABLE: Dict[str, str] = {
    cls.rule_id: cls.title for cls in DEFAULT_RULES
}


def full_rule_table() -> Dict[str, str]:
    """Every rule id -> title, local (CHX001–007) and deep (CHX008–017).

    Imports the deep registry lazily so the local lint path keeps its
    zero-cost import footprint.
    """
    from repro.analysis.flow.rules import DEEP_RULE_TABLE

    table = dict(RULE_TABLE)
    table.update(DEEP_RULE_TABLE)
    return table

"""Protocol state-machine extraction, model checking and conformance.

Three layers over the deep-analysis project index:

* :mod:`.extract` lifts per-role communicating state machines (sends,
  receive loops, barrier ops, blocking waits, epoch guards) out of the
  code;
* :mod:`.mc` explores message interleavings of small clusters (m=2-3)
  and checks deadlock-freedom, barrier consensus, steal termination,
  lost wakeups and epoch fencing;
* :mod:`.conform` replays recorded causal-trace DAGs against the
  extracted model, flagging unmodeled transitions and naming stuck
  transitions in deadlocked traces.
"""

from .conform import ConformanceReport, conform, conform_trace
from .extract import extract_model
from .mc import CheckResult, PropertyResult, check_protocol
from .model import (
    BarrierOp,
    ProtocolModel,
    ReceiveLoop,
    RoleModel,
    SendOp,
    WaitOp,
)

__all__ = [
    "BarrierOp",
    "CheckResult",
    "ConformanceReport",
    "PropertyResult",
    "ProtocolModel",
    "ReceiveLoop",
    "RoleModel",
    "SendOp",
    "WaitOp",
    "check_protocol",
    "conform",
    "conform_trace",
    "extract_model",
]

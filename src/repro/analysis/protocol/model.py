"""Extracted protocol model: per-role communicating state machines.

The model is a static artifact lifted from the code by
:mod:`repro.analysis.protocol.extract`: every transport ``send`` becomes
a labeled send transition, every mailbox dispatch loop a set of receive
transitions (one per handled message kind), barrier arrive/wait/release
calls become synchronization transitions, and epoch-fence comparisons
become transition predicates.  The bounded model checker
(:mod:`repro.analysis.protocol.mc`) instantiates the model for small
clusters; the conformance checker (:mod:`repro.analysis.protocol.conform`)
replays recorded causal DAGs against its alphabet.

Everything here is plain data plus DOT/JSON rendering — extraction
logic lives in ``extract.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "BarrierOp",
    "ProtocolModel",
    "ReceiveLoop",
    "RoleModel",
    "SendOp",
    "WaitOp",
]


@dataclass(frozen=True)
class SendOp:
    """One ``network.send(...)``-shaped call site."""

    role: str
    qualname: str
    file: str
    line: int
    #: Destination service name, or None when statically unresolvable
    #: (e.g. a reply service carried in the request payload).
    service: Optional[str]
    #: Possible literal message kinds at this site (empty when the kind
    #: expression is opaque).
    kinds: Tuple[str, ...]
    #: True when *every* possible kind value was resolved to a literal;
    #: rules that prove absence (CHX019) only trust complete sites.
    kinds_complete: bool
    #: The call passes an ``epoch=`` stamp (fence-aware traffic).
    has_epoch: bool
    #: The destination expression can differ from the source (the
    #: delivery event may never fire under fail-stop faults).
    remote: bool
    #: The enclosing function has a timeout/liveness escape (an
    #: ``any_of``+``timeout`` wait loop or a declared timeout helper),
    #: so waiting on this send's delivery cannot hang forever.
    liveness: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "role": self.role,
            "function": self.qualname,
            "file": self.file,
            "line": self.line,
            "service": self.service,
            "kinds": list(self.kinds),
            "kinds_complete": self.kinds_complete,
            "has_epoch": self.has_epoch,
            "remote": self.remote,
            "liveness": self.liveness,
        }


@dataclass(frozen=True)
class ReceiveLoop:
    """One mailbox dispatch loop (``message = yield mailbox.get()``)."""

    role: str
    qualname: str
    file: str
    line: int
    #: Service whose mailbox this loop drains, or None if unresolved.
    service: Optional[str]
    #: Message kinds the loop dispatches on (literal comparisons or
    #: ``_handle_<kind>`` methods behind a dynamic getattr dispatch).
    kinds: Tuple[str, ...]
    #: The loop never inspects ``message.kind`` — it accepts anything.
    wildcard: bool
    #: The loop fences stale traffic (compares ``message.epoch``).
    epoch_guard: bool
    #: The enclosing role tracks a recovery epoch (``self.epoch`` /
    #: ``self.data_epoch``) — i.e. the guard is *required*.
    epoch_aware: bool

    def handles(self, kind: str) -> bool:
        return self.wildcard or kind in self.kinds

    def to_dict(self) -> Dict[str, object]:
        return {
            "role": self.role,
            "function": self.qualname,
            "file": self.file,
            "line": self.line,
            "service": self.service,
            "kinds": list(self.kinds),
            "wildcard": self.wildcard,
            "epoch_guard": self.epoch_guard,
            "epoch_aware": self.epoch_aware,
        }


@dataclass(frozen=True)
class BarrierOp:
    """A barrier synchronization point (arrive / wait / release)."""

    role: str
    qualname: str
    file: str
    line: int
    op: str  # "arrive" | "wait" | "release"

    def to_dict(self) -> Dict[str, object]:
        return {
            "role": self.role,
            "function": self.qualname,
            "file": self.file,
            "line": self.line,
            "op": self.op,
        }


@dataclass(frozen=True)
class WaitOp:
    """A blocking ``yield`` on a transport delivery event."""

    role: str
    qualname: str
    file: str
    line: int
    #: What is awaited (source text of the yielded expression).
    target: str
    #: The awaited send could go to a remote machine.
    remote: bool
    #: The enclosing function has a timeout/liveness path.
    has_timeout: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "role": self.role,
            "function": self.qualname,
            "file": self.file,
            "line": self.line,
            "target": self.target,
            "remote": self.remote,
            "has_timeout": self.has_timeout,
        }


@dataclass
class RoleModel:
    """One communicating role (a class or module with protocol ops)."""

    name: str
    services: Tuple[str, ...] = ()
    sends: List[SendOp] = field(default_factory=list)
    receives: List[ReceiveLoop] = field(default_factory=list)
    barriers: List[BarrierOp] = field(default_factory=list)
    waits: List[WaitOp] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "services": list(self.services),
            "sends": [op.to_dict() for op in self.sends],
            "receives": [op.to_dict() for op in self.receives],
            "barriers": [op.to_dict() for op in self.barriers],
            "waits": [op.to_dict() for op in self.waits],
        }


class ProtocolModel:
    """The whole extracted protocol: roles plus declared annotations."""

    def __init__(self):
        self.roles: Dict[str, RoleModel] = {}
        #: module name -> its ``PROTOCOL_TRANSITIONS`` annotation dict.
        self.declared: Dict[str, Dict[str, str]] = {}

    def role(self, name: str) -> RoleModel:
        if name not in self.roles:
            self.roles[name] = RoleModel(name=name)
        return self.roles[name]

    # -- alphabets -------------------------------------------------------

    def send_alphabet(self) -> Set[str]:
        return {
            kind
            for role in self.roles.values()
            for op in role.sends
            for kind in op.kinds
        }

    def handled_alphabet(self) -> Set[str]:
        return {
            kind
            for role in self.roles.values()
            for loop in role.receives
            for kind in loop.kinds
        }

    def alphabet(self) -> Set[str]:
        return self.send_alphabet() | self.handled_alphabet()

    # -- queries ---------------------------------------------------------

    def handlers_for(self, service: str) -> List[ReceiveLoop]:
        return [
            loop
            for role in self.roles.values()
            for loop in role.receives
            if loop.service == service
        ]

    def handles(self, service: str, kind: str) -> bool:
        """Some receive loop on ``service`` dispatches ``kind``."""
        return any(
            loop.handles(kind) for loop in self.handlers_for(service)
        )

    def all_sends(self) -> List[SendOp]:
        return [op for role in self.roles.values() for op in role.sends]

    def all_receives(self) -> List[ReceiveLoop]:
        return [op for role in self.roles.values() for op in role.receives]

    def all_waits(self) -> List[WaitOp]:
        return [op for role in self.roles.values() for op in role.waits]

    def all_barriers(self) -> List[BarrierOp]:
        return [op for role in self.roles.values() for op in role.barriers]

    def service_owner(self, service: str) -> Optional[str]:
        for role in self.roles.values():
            if service in role.services:
                return role.name
        return None

    def stats(self) -> Dict[str, int]:
        return {
            "roles": len(self.roles),
            "sends": len(self.all_sends()),
            "receives": len(self.all_receives()),
            "barriers": len(self.all_barriers()),
            "waits": len(self.all_waits()),
            "kinds": len(self.alphabet()),
        }

    # -- export ----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "model_version": 1,
            "roles": {
                name: role.to_dict()
                for name, role in sorted(self.roles.items())
            },
            "declared_transitions": {
                module: dict(sorted(table.items()))
                for module, table in sorted(self.declared.items())
            },
            "alphabet": sorted(self.alphabet()),
            "stats": self.stats(),
        }

    def to_dot(self) -> str:
        """Render the role/service message graph as Graphviz DOT.

        One node per role; a send with a resolved service draws an edge
        to the role registering that service (or to a free-standing
        service node when no role owns it), labeled with the message
        kind.  Receive-only kinds render as self-annotations, barrier
        ops as edges into a shared ``barrier`` node.
        """
        lines = ["digraph protocol {", "  rankdir=LR;",
                 '  node [shape=box, fontname="monospace"];']
        for name in sorted(self.roles):
            role = self.roles[name]
            services = ",".join(role.services)
            label = name if not services else f"{name}\\n[{services}]"
            lines.append(f'  "{name}" [label="{label}"];')
        edges: Set[Tuple[str, str, str]] = set()
        orphan_services: Set[str] = set()
        for role in self.roles.values():
            for op in role.sends:
                if op.service is None or not op.kinds:
                    continue
                owner = self.service_owner(op.service)
                target = owner if owner is not None else f"svc:{op.service}"
                if owner is None:
                    orphan_services.add(op.service)
                for kind in op.kinds:
                    guard = " [e]" if op.has_epoch else ""
                    edges.add((role.name, target, f"{kind}{guard}"))
            if role.barriers:
                edges.add((role.name, "barrier", "arrive/release"))
        if any(target == "barrier" for _s, target, _l in edges):
            lines.append('  "barrier" [shape=doublecircle, label="barrier"];')
        for service in sorted(orphan_services):
            lines.append(
                f'  "svc:{service}" [shape=ellipse, style=dashed, '
                f'label="{service}?"];'
            )
        for src, dst, label in sorted(edges):
            lines.append(f'  "{src}" -> "{dst}" [label="{label}"];')
        lines.append("}")
        return "\n".join(lines) + "\n"

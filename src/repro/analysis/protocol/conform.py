"""Replay causal-trace DAGs against the extracted protocol model.

A trace (``run --trace`` / fuzz deadlock capture) carries the causal
events of one execution: message sends (with delivery stamps), barrier
arrivals and releases.  Conformance holds when

* every observed message kind is in the extracted model's alphabet
  (no **unmodeled transitions**), and
* every barrier release is causally downstream of every arrival of its
  round (no premature release).

The report also surfaces **modeled-but-never-observed** kinds (paths the
model allows that this execution never took — a coverage signal, not a
failure) and the **stuck transitions** of an incomplete trace: messages
that were sent but never delivered and barrier rounds with arrivals but
no release.  For a deadlock-classified fuzz episode that is exactly the
transition the cluster hung on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.causal import (
    message_kind_counts,
    undelivered_messages,
    unreleased_barriers,
)

from .model import ProtocolModel

__all__ = ["ConformanceReport", "conform", "conform_trace"]


@dataclass
class ConformanceReport:
    #: message kinds observed in the trace but absent from the model.
    unmodeled: List[str] = field(default_factory=list)
    #: modeled kinds the trace never exercised (coverage, not failure).
    unobserved: List[str] = field(default_factory=list)
    #: barrier rounds violating arrive-before-release, with detail.
    barrier_violations: List[str] = field(default_factory=list)
    #: sent-but-never-delivered messages: "kind mSRC->mDST (xN)".
    stuck_messages: List[str] = field(default_factory=list)
    #: barrier rounds with arrivals but no release: "KEY waited-on by ...".
    stuck_barriers: List[str] = field(default_factory=list)
    #: observed kind -> event count (context for the reader).
    observed: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.unmodeled and not self.barrier_violations

    @property
    def stuck(self) -> bool:
        """The trace ends mid-protocol (a deadlock/crash capture)."""
        return bool(self.stuck_messages or self.stuck_barriers)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "stuck": self.stuck,
            "unmodeled": list(self.unmodeled),
            "unobserved": list(self.unobserved),
            "barrier_violations": list(self.barrier_violations),
            "stuck_messages": list(self.stuck_messages),
            "stuck_barriers": list(self.stuck_barriers),
            "observed": dict(self.observed),
        }

    def format_text(self) -> str:
        lines = [
            "trace conformance: "
            + ("PASS" if self.ok else "FAIL")
            + (" (incomplete trace)" if self.stuck else "")
        ]
        total = sum(self.observed.values())
        lines.append(
            f"  observed {total} message(s) across "
            f"{len(self.observed)} kind(s)"
        )
        for kind in sorted(self.observed):
            lines.append(f"    {kind}: {self.observed[kind]}")
        if self.unmodeled:
            lines.append("  UNMODELED transitions (kind not in model):")
            for kind in self.unmodeled:
                lines.append(f"    {kind}")
        else:
            lines.append("  unmodeled transitions: none")
        if self.barrier_violations:
            lines.append("  BARRIER violations (release before arrival):")
            for item in self.barrier_violations:
                lines.append(f"    {item}")
        else:
            lines.append("  barrier violations: none")
        if self.unobserved:
            lines.append(
                "  modeled but never observed (coverage): "
                + ", ".join(self.unobserved)
            )
        if self.stuck_messages:
            lines.append("  stuck transitions (sent, never delivered):")
            for item in self.stuck_messages:
                lines.append(f"    {item}")
        if self.stuck_barriers:
            lines.append("  stuck barriers (arrived, never released):")
            for item in self.stuck_barriers:
                lines.append(f"    {item}")
        return "\n".join(lines)


def conform(
    events: Sequence[Dict[str, Any]], model: ProtocolModel
) -> ConformanceReport:
    """Check one causal event list against the extracted model."""
    report = ConformanceReport()
    report.observed = message_kind_counts(events)
    alphabet = model.alphabet()
    report.unmodeled = sorted(set(report.observed) - alphabet)
    report.unobserved = sorted(alphabet - set(report.observed))

    # Barrier consensus on the recorded DAG: the release of a round
    # must list every arrival as a parent and never precede one.
    arrivals: Dict[str, List[Dict[str, Any]]] = {}
    releases: Dict[str, Dict[str, Any]] = {}
    for event in events:
        key = event.get("barrier")
        if key is None:
            continue
        bucket = (event.get("trace"), key)
        if event.get("kind") == "arrive":
            arrivals.setdefault(bucket, []).append(event)  # type: ignore[arg-type]
        elif event.get("kind") == "release":
            releases[bucket] = event  # type: ignore[index]
    for bucket, arrived in sorted(arrivals.items(), key=str):
        release = releases.get(bucket)
        if release is None:
            continue  # reported via unreleased_barriers below
        parents = set(release.get("parents") or [])
        for arrival in arrived:
            label = (
                f"{bucket[1]}: machine {arrival.get('machine')} arrival "
                f"(event {arrival.get('id')})"
            )
            if arrival["id"] not in parents:
                report.barrier_violations.append(
                    f"{label} missing from release parents"
                )
            elif (
                release.get("t0") is not None
                and arrival.get("t0") is not None
                and arrival["t0"] > release["t0"]
            ):
                report.barrier_violations.append(
                    f"{label} at t={arrival['t0']:.6f} after release "
                    f"at t={release['t0']:.6f}"
                )

    for kind, src, dst, count in undelivered_messages(events):
        suffix = f" (x{count})" if count > 1 else ""
        report.stuck_messages.append(f"{kind} m{src}->m{dst}{suffix}")
    for key, machines in unreleased_barriers(events):
        waiters = ", ".join(f"m{m}" for m in machines)
        report.stuck_barriers.append(f"{key} waited on by {waiters}")
    return report


def conform_trace(
    trace: Dict[str, Any], model: ProtocolModel
) -> Optional[ConformanceReport]:
    """Conform a loaded Chrome-trace dict; None when it carries no
    causal events (traces recorded before causal capture existed)."""
    from repro.obs.causal import CausalError, causal_events_from_trace

    try:
        events = causal_events_from_trace(trace)
    except CausalError:
        return None
    if not events:
        return None
    return conform(events, model)

"""Explicit-state bounded model checking of the extracted protocol.

The checker instantiates the extracted model for a small cluster (m=2-3
machines) and exhaustively explores message interleavings under a
fail-stop network (any in-flight message may be lost).  The system is an
abstraction of one Chaos phase, with its shape derived from the model,
not hard-coded:

* the steal stage exists iff ``steal_request``/``steal_reply`` are in
  the extracted alphabet;
* steal timeout transitions are enabled iff the extracted steal send
  sites carry a liveness escape (``any_of`` + ``timeout``);
* barrier arrive/release transitions exist iff the model has barrier
  ops;
* the stale-epoch injection is fenced per the extracted receive loops'
  epoch guards.

Checked properties (each reported with a counterexample path when
violated):

``deadlock_freedom``
    every dead-end state is the all-done state;
``barrier_consensus``
    no machine passes the barrier before every machine arrived;
``steal_termination``
    the exploration is finite and every maximal path ends all-done;
``no_lost_wakeup``
    a machine blocked on a reply always has the reply in flight, the
    original request in flight, or a timeout transition enabled;
``epoch_fencing``
    no stale-epoch message is ever accepted.

``override`` knobs (used by tests to plant violations) deliberately
weaken the system: ``steal_timeout=False`` removes the timeout escape,
``skip_arrive=True`` lets a machine slip past the arrive announcement,
``premature_release=True`` opens the barrier after the first arrival,
``drop_epoch_guard=True`` unfences every receive loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from .model import ProtocolModel

__all__ = ["CheckResult", "PropertyResult", "check_protocol"]

# Machine phases, in protocol order.
WORK = "work"
STEAL_WAIT = "steal_wait"
ARRIVE = "arrive"
WAITING = "waiting"
DONE = "done"

#: (kind, src, dst, stale?) — the in-flight message alphabet.
_Msg = Tuple[str, int, int, bool]

#: (phases, pending peer per machine, attempted-steal bitmaps,
#:  in-flight multiset, arrived bitmap, stale-accepted flag)
_State = Tuple[
    Tuple[str, ...],
    Tuple[Optional[int], ...],
    Tuple[FrozenSet[int], ...],
    Tuple[_Msg, ...],
    FrozenSet[int],
    bool,
]


@dataclass
class PropertyResult:
    name: str
    ok: bool
    detail: str
    counterexample: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "ok": self.ok,
            "detail": self.detail,
            "counterexample": list(self.counterexample),
        }


@dataclass
class CheckResult:
    machines: int
    states: int
    transitions: int
    properties: List[PropertyResult]
    #: Feature flags derived from the model (for the report).
    features: Dict[str, bool] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.properties)

    def to_dict(self) -> Dict[str, object]:
        return {
            "machines": self.machines,
            "states": self.states,
            "transitions": self.transitions,
            "ok": self.ok,
            "features": dict(self.features),
            "properties": [p.to_dict() for p in self.properties],
        }

    def format_text(self) -> str:
        lines = [
            f"model check: m={self.machines}  states={self.states}  "
            f"transitions={self.transitions}"
        ]
        for name, enabled in sorted(self.features.items()):
            lines.append(f"  feature {name}: {'on' if enabled else 'off'}")
        for prop in self.properties:
            mark = "ok " if prop.ok else "FAIL"
            lines.append(f"  [{mark}] {prop.name}: {prop.detail}")
            for step in prop.counterexample:
                lines.append(f"         {step}")
        lines.append("verdict: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


class _System:
    """The m-machine abstraction instantiated from a ProtocolModel."""

    def __init__(self, model: ProtocolModel, machines: int,
                 override: Optional[Dict[str, object]] = None):
        override = override or {}
        alphabet = model.alphabet()
        self.machines = machines
        self.steal = {"steal_request", "steal_reply"} <= alphabet
        # Timeout escape: some steal_request send site has liveness.
        steal_liveness = any(
            op.liveness
            for op in model.all_sends()
            if "steal_request" in op.kinds
        )
        self.steal_timeout = bool(
            override.get("steal_timeout", steal_liveness)
        )
        self.barrier = bool(model.all_barriers())
        self.skip_arrive = bool(override.get("skip_arrive", False))
        self.premature_release = bool(
            override.get("premature_release", False)
        )
        # Epoch fencing: per handled kind, is every epoch-aware loop
        # that dispatches it guarded?
        self.guarded: Dict[str, bool] = {}
        for loop in model.all_receives():
            for kind in (loop.kinds or ("*",)):
                prior = self.guarded.get(kind, True)
                guard = loop.epoch_guard or not loop.epoch_aware
                self.guarded[kind] = prior and guard
        if override.get("drop_epoch_guard"):
            self.guarded = {kind: False for kind in self.guarded}
        # One stale-epoch message to inject, if the protocol has a
        # steal stage (the compute service is the fenced one).
        self.stale_kind = "steal_request" if self.steal else None

    # -- state space ------------------------------------------------------

    def initial(self) -> _State:
        in_flight: Tuple[_Msg, ...] = ()
        if self.stale_kind is not None and self.machines >= 2:
            in_flight = ((self.stale_kind, 1, 0, True),)
        return (
            tuple(WORK for _ in range(self.machines)),
            tuple(None for _ in range(self.machines)),
            tuple(frozenset() for _ in range(self.machines)),
            in_flight,
            frozenset(),
            False,
        )

    def successors(self, state: _State) -> List[Tuple[str, _State]]:
        phases, pending, attempted, in_flight, arrived, stale = state
        out: List[Tuple[str, _State]] = []

        def emit(label: str, **changes) -> None:
            new = {
                "phases": phases,
                "pending": pending,
                "attempted": attempted,
                "in_flight": in_flight,
                "arrived": arrived,
                "stale": stale,
            }
            new.update(changes)
            out.append((
                label,
                (
                    new["phases"], new["pending"], new["attempted"],
                    tuple(sorted(new["in_flight"])), new["arrived"],
                    new["stale"],
                ),
            ))

        def with_phase(i: int, phase: str) -> Tuple[str, ...]:
            return phases[:i] + (phase,) + phases[i + 1:]

        def with_pending(i: int, value: Optional[int]):
            return pending[:i] + (value,) + pending[i + 1:]

        for i in range(self.machines):
            phase = phases[i]
            if phase == WORK:
                peers = [
                    j for j in range(self.machines)
                    if j != i and j not in attempted[i]
                ] if self.steal else []
                if peers:
                    j = min(peers)  # deterministic order bounds the space
                    emit(
                        f"m{i}: send steal_request -> m{j}",
                        phases=with_phase(i, STEAL_WAIT),
                        pending=with_pending(i, j),
                        attempted=attempted[:i]
                        + (attempted[i] | {j},)
                        + attempted[i + 1:],
                        in_flight=in_flight
                        + (("steal_request", i, j, False),),
                    )
                else:
                    target = ARRIVE if self.barrier else DONE
                    emit(
                        f"m{i}: work done",
                        phases=with_phase(i, target),
                    )
            elif phase == STEAL_WAIT and self.steal_timeout:
                emit(
                    f"m{i}: steal timeout (abandon m{pending[i]})",
                    phases=with_phase(i, WORK),
                    pending=with_pending(i, None),
                )
            elif phase == ARRIVE:
                emit(
                    f"m{i}: barrier arrive",
                    phases=with_phase(i, WAITING),
                    arrived=arrived | {i},
                )
                if self.skip_arrive:
                    emit(
                        f"m{i}: reach barrier WITHOUT arrive",
                        phases=with_phase(i, WAITING),
                    )

        # Barrier release: one transition moving every waiting machine.
        if self.barrier:
            waiting = [i for i in range(self.machines) if phases[i] == WAITING]
            quorum = (
                len(arrived) >= 1
                if self.premature_release
                else len(arrived) == self.machines
            )
            if waiting and quorum:
                new_phases = tuple(
                    DONE if phases[i] == WAITING else phases[i]
                    for i in range(self.machines)
                )
                emit("barrier release", phases=new_phases)

        # Message deliveries and losses.
        for index, msg in enumerate(in_flight):
            kind, src, dst, is_stale = msg
            remaining = in_flight[:index] + in_flight[index + 1:]
            if is_stale:
                if self.guarded.get(kind, True):
                    emit(
                        f"stale {kind} m{src}->m{dst}: fenced (dropped)",
                        in_flight=remaining,
                    )
                else:
                    emit(
                        f"stale {kind} m{src}->m{dst}: ACCEPTED",
                        in_flight=remaining,
                        stale=True,
                    )
                continue
            if kind == "steal_request":
                if phases[dst] != DONE:
                    emit(
                        f"deliver steal_request m{src}->m{dst}; reply",
                        in_flight=remaining
                        + (("steal_reply", dst, src, False),),
                    )
            elif kind == "steal_reply":
                if phases[dst] == STEAL_WAIT and pending[dst] == src:
                    emit(
                        f"deliver steal_reply m{src}->m{dst}",
                        phases=with_phase(dst, WORK),
                        pending=with_pending(dst, None),
                        in_flight=remaining,
                    )
                else:
                    emit(
                        f"late steal_reply m{src}->m{dst}: dropped",
                        in_flight=remaining,
                    )
            # Fail-stop network: any non-stale message may be lost.
            emit(f"lose {kind} m{src}->m{dst}", in_flight=remaining)

        return out


def _trace_to(
    state: _State,
    parents: Dict[_State, Tuple[Optional[_State], str]],
) -> List[str]:
    steps: List[str] = []
    cursor: Optional[_State] = state
    while cursor is not None:
        parent, label = parents[cursor]
        if label:
            steps.append(label)
        cursor = parent
    steps.reverse()
    return steps


def check_protocol(
    model: ProtocolModel,
    machines: int = 2,
    override: Optional[Dict[str, object]] = None,
    max_states: int = 200_000,
) -> CheckResult:
    """Exhaustively explore the m-machine system and check properties."""
    system = _System(model, machines, override)
    initial = system.initial()
    parents: Dict[_State, Tuple[Optional[_State], str]] = {
        initial: (None, "")
    }
    queue = deque([initial])
    transitions = 0
    dead_ends: List[_State] = []
    lost_wakeups: List[_State] = []
    consensus_violations: List[_State] = []
    stale_accepts: List[_State] = []

    def all_done(state: _State) -> bool:
        return all(phase == DONE for phase in state[0])

    while queue:
        if len(parents) > max_states:
            raise RuntimeError(
                f"state space exceeded {max_states} states; tighten the "
                f"model or lower the machine count"
            )
        state = queue.popleft()
        phases, pending, _attempted, in_flight, arrived, stale = state
        if stale:
            stale_accepts.append(state)
        if any(phase == DONE for phase in phases) and len(arrived) < machines:
            consensus_violations.append(state)
        for i in range(machines):
            if phases[i] != STEAL_WAIT:
                continue
            wakeup_in_flight = any(
                not is_stale
                and kind in ("steal_request", "steal_reply")
                and (
                    (kind == "steal_request" and src == i)
                    or (kind == "steal_reply" and dst == i)
                )
                for kind, src, dst, is_stale in in_flight
            )
            if not wakeup_in_flight and not system.steal_timeout:
                lost_wakeups.append(state)
        successors = system.successors(state)
        if not successors:
            dead_ends.append(state)
            continue
        for label, succ in successors:
            transitions += 1
            if succ not in parents:
                parents[succ] = (state, label)
                queue.append(succ)

    deadlocks = [s for s in dead_ends if not all_done(s)]
    reached_done = any(all_done(s) for s in parents)

    def result(name: str, bad: List[_State], detail_ok: str,
               detail_bad: str) -> PropertyResult:
        if not bad:
            return PropertyResult(name, True, detail_ok)
        return PropertyResult(
            name, False, detail_bad, _trace_to(bad[0], parents)
        )

    properties = [
        result(
            "deadlock_freedom",
            deadlocks,
            f"every dead-end state is all-done "
            f"({len(dead_ends)} terminal state(s))",
            f"{len(deadlocks)} deadlocked state(s); first counterexample:",
        ),
        result(
            "barrier_consensus",
            consensus_violations,
            "no machine passed the barrier before all arrived",
            f"{len(consensus_violations)} state(s) release before "
            f"full arrival; first counterexample:",
        ),
        PropertyResult(
            "steal_termination",
            reached_done and not deadlocks,
            "exploration finite and the all-done state is reachable"
            if reached_done and not deadlocks
            else "no terminating execution found",
        ),
        result(
            "no_lost_wakeup",
            lost_wakeups,
            "blocked machines always hold a wakeup in flight or a "
            "timeout transition",
            f"{len(lost_wakeups)} state(s) block forever after message "
            f"loss; first counterexample:",
        ),
        result(
            "epoch_fencing",
            stale_accepts,
            "every stale-epoch delivery is fenced",
            f"{len(stale_accepts)} state(s) accept a stale-epoch "
            f"message; first counterexample:",
        ),
    ]
    return CheckResult(
        machines=machines,
        states=len(parents),
        transitions=transitions,
        properties=properties,
        features={
            "steal_stage": system.steal,
            "steal_timeout": system.steal_timeout,
            "barrier": system.barrier,
            "stale_injection": system.stale_kind is not None,
        },
    )

"""Lift communicating state machines out of the code.

The extractor walks the :class:`~repro.analysis.flow.project.ProjectIndex`
and recognizes the repo's protocol idioms:

* ``self._mailbox = network.register(machine, SERVICE)`` binds a role's
  mailbox attribute to a service name (constants resolve through import
  aliases and class attributes);
* ``message = yield self._mailbox.get()`` opens a receive loop; the
  kinds it dispatches come from literal ``message.kind`` comparisons or
  a dynamic ``getattr(self, f"_handle_{message.kind}")`` table, and a
  ``message.epoch`` comparison marks the loop epoch-fenced;
* ``network.send(..., service=..., kind=..., epoch=...)`` is a send
  transition — kind/service expressions resolve through local literals,
  conditional expressions, module/class constants and (one level deep)
  literal arguments at the call sites of the enclosing helper;
* ``barrier_arrive`` / ``barrier.wait`` / ``barrier_release`` calls are
  synchronization transitions;
* ``yield delivered`` on a send result or a registered reply
  :class:`Event` is a blocking wait, with liveness judged from
  ``any_of``+``timeout`` escapes or declared timeout helpers.

Modules may also publish a ``PROTOCOL_TRANSITIONS`` dict (name ->
transition label); entries whose label starts with ``timeout`` mark
functions that count as liveness escapes for waits (e.g.
``jittered_delay`` in :mod:`repro.net.retry`).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.flow.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    attr_chain,
    dump_expr,
    enclosing_class_of,
)

from .model import (
    BarrierOp,
    ProtocolModel,
    ReceiveLoop,
    RoleModel,
    SendOp,
    WaitOp,
)

__all__ = ["extract_model"]

#: Name of the per-module transition annotation table.
ANNOTATION_NAME = "PROTOCOL_TRANSITIONS"


def _str_constants_of(body: List[ast.stmt]) -> Dict[str, str]:
    """``NAME = "literal"`` assignments in a statement list."""
    table: Dict[str, str] = {}
    for stmt in body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            table[stmt.targets[0].id] = stmt.value.value
    return table


def _annotation_table(module: ModuleInfo) -> Optional[Dict[str, str]]:
    """The module's ``PROTOCOL_TRANSITIONS`` dict, if it declares one."""
    for stmt in module.tree.body:
        if not (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == ANNOTATION_NAME
            and isinstance(stmt.value, ast.Dict)
        ):
            continue
        table: Dict[str, str] = {}
        for key, value in zip(stmt.value.keys, stmt.value.values):
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                table[key.value] = value.value
        return table
    return None


class _Resolver:
    """Resolve expressions to sets of possible string literals."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self.module_constants: Dict[str, Dict[str, str]] = {}
        self.class_constants: Dict[str, Dict[str, str]] = {}
        for module in index.modules.values():
            self.module_constants[module.name] = _str_constants_of(
                module.tree.body
            )
            for cls_info in module.classes.values():
                self.class_constants[cls_info.qualname] = _str_constants_of(
                    cls_info.node.body
                )

    def module_constant(self, dotted: str) -> Optional[str]:
        """A fully dotted ``pkg.mod.NAME`` constant, or None."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.module_constants and len(parts) == cut + 1:
                return self.module_constants[prefix].get(parts[cut])
        return None

    def resolve(
        self,
        expr: ast.AST,
        module: ModuleInfo,
        func: Optional[FunctionInfo],
        class_ctx: Optional[ClassInfo],
    ) -> Tuple[Set[str], bool]:
        """Possible string values of ``expr`` and whether the set is
        complete (covers every runtime value)."""
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, str):
                return {expr.value}, True
            return set(), False
        if isinstance(expr, ast.IfExp):
            then_v, then_c = self.resolve(expr.body, module, func, class_ctx)
            else_v, else_c = self.resolve(expr.orelse, module, func, class_ctx)
            return then_v | else_v, then_c and else_c
        if isinstance(expr, ast.JoinedStr):
            return set(), False
        chain = attr_chain(expr)
        if chain is None:
            return set(), False
        if len(chain) == 1:
            return self._resolve_name(chain[0], module, func, class_ctx)
        if chain[0] in ("self", "cls") and class_ctx is not None:
            value = self._class_constant(class_ctx, chain[1])
            if value is not None and len(chain) == 2:
                return {value}, True
            return set(), False
        # A dotted constant through an import alias: walk the chain
        # through the alias table and look the terminal name up in the
        # target module's constant table.
        if chain[0] in module.imports:
            dotted = ".".join([module.imports[chain[0]]] + chain[1:])
            value = self.module_constant(dotted)
            if value is not None:
                return {value}, True
        return set(), False

    def _class_constant(
        self, cls_info: ClassInfo, name: str
    ) -> Optional[str]:
        value = self.class_constants.get(cls_info.qualname, {}).get(name)
        if value is not None:
            return value
        module = self.index.modules.get(cls_info.module)
        for base_chain in cls_info.base_chains:
            base = (
                self.index.resolve_chain_in(module, base_chain)
                if module is not None
                else None
            )
            if isinstance(base, ClassInfo):
                found = self._class_constant(base, name)
                if found is not None:
                    return found
        return None

    def _resolve_name(
        self,
        name: str,
        module: ModuleInfo,
        func: Optional[FunctionInfo],
        class_ctx: Optional[ClassInfo],
    ) -> Tuple[Set[str], bool]:
        # 1. A single literal assignment inside the enclosing function.
        if func is not None:
            values, complete, bindings = set(), True, 0
            for node in ast.walk(func.node):
                if not (
                    isinstance(node, ast.Assign)
                    and any(
                        isinstance(t, ast.Name) and t.id == name
                        for t in node.targets
                    )
                ):
                    continue
                bindings += 1
                sub_v, sub_c = self.resolve(
                    node.value, module, None, class_ctx
                )
                values |= sub_v
                complete = complete and sub_c
            if bindings:
                return values, complete and bool(values)
            # 2. A function parameter: gather literal arguments at the
            #    helper's direct call sites (one level deep).
            params = [a.arg for a in func.node.args.args]
            if name in params:
                return self._param_values(func, params.index(name), module)
        # 3. A module-level constant or imported constant.
        if name in self.module_constants.get(module.name, {}):
            return {self.module_constants[module.name][name]}, True
        if name in module.imports:
            value = self.module_constant(module.imports[name])
            if value is not None:
                return {value}, True
        return set(), False

    def _param_values(
        self, func: FunctionInfo, position: int, module: ModuleInfo
    ) -> Tuple[Set[str], bool]:
        """Literal values passed for parameter ``position`` at every
        project call site of ``func`` (by name, one level only)."""
        values: Set[str] = set()
        complete = True
        sites = 0
        skip_self = 1 if func.class_name is not None else 0
        param_name = func.node.args.args[position].arg
        for caller in self.index.iter_functions():
            caller_module = self.index.modules.get(caller.module)
            if caller_module is None:
                continue
            for node in ast.walk(caller.node):
                if not isinstance(node, ast.Call):
                    continue
                chain = attr_chain(node.func)
                if chain is None or chain[-1] != func.name:
                    continue
                sites += 1
                arg: Optional[ast.AST] = None
                index_in_call = position - skip_self
                if 0 <= index_in_call < len(node.args):
                    arg = node.args[index_in_call]
                else:
                    for kw in node.keywords:
                        if kw.arg == param_name:
                            arg = kw.value
                if arg is None:
                    complete = False
                    continue
                caller_class = enclosing_class_of(caller_module, caller)
                sub_v, sub_c = self.resolve(
                    arg, caller_module, caller, caller_class
                )
                values |= sub_v
                complete = complete and sub_c
        if sites == 0:
            return set(), False
        return values, complete and bool(values)


def _call_chain(node: ast.AST) -> Optional[List[str]]:
    if isinstance(node, ast.Call):
        return attr_chain(node.func)
    return None


def _yielded_expr(stmt: ast.stmt) -> Optional[ast.AST]:
    """The expression of a bare ``yield <expr>`` statement, or None."""
    value = None
    if isinstance(stmt, ast.Expr):
        value = stmt.value
    elif isinstance(stmt, ast.Assign):
        value = stmt.value
    if isinstance(value, ast.Yield) and value.value is not None:
        return value.value
    return None


def _is_any_of_with_timeout(call: ast.Call) -> bool:
    chain = attr_chain(call.func)
    if chain is None or chain[-1] != "any_of":
        return False
    for arg in ast.walk(call):
        sub = _call_chain(arg)
        if sub is not None and sub[-1] == "timeout":
            return True
    return False


class _Extractor:
    def __init__(self, index: ProjectIndex):
        self.index = index
        self.resolver = _Resolver(index)
        self.model = ProtocolModel()
        #: (class qualname, attribute) -> service name for mailboxes
        #: bound via ``network.register``.
        self.mailboxes: Dict[Tuple[str, str], str] = {}
        #: functions that count as a timeout/liveness escape, from
        #: PROTOCOL_TRANSITIONS entries labeled ``timeout...``.
        self.timeout_functions: Set[str] = {"timeout"}

    # -- passes ----------------------------------------------------------

    def run(self) -> ProtocolModel:
        self._collect_annotations()
        self._collect_mailboxes()
        for func in self.index.iter_functions():
            module = self.index.modules.get(func.module)
            if module is None:
                continue
            class_ctx = enclosing_class_of(module, func)
            self._scan_function(func, module, class_ctx)
        self._bind_services()
        # Drop roles with no protocol ops at all (every scanned class
        # gets a provisional role; most never touch the transport).
        self.model.roles = {
            name: role
            for name, role in self.model.roles.items()
            if role.sends or role.receives or role.barriers
            or role.waits or role.services
        }
        return self.model

    def _collect_annotations(self) -> None:
        for module in self.index.modules.values():
            table = _annotation_table(module)
            if table is None:
                continue
            self.model.declared[module.name] = table
            for name, label in table.items():
                if label.startswith("timeout"):
                    self.timeout_functions.add(name.split(".")[-1])

    def _collect_mailboxes(self) -> None:
        for module in self.index.modules.values():
            for cls_info in module.classes.values():
                for method in cls_info.methods.values():
                    self._scan_registrations(method, module, cls_info)

    def _scan_registrations(
        self, func: FunctionInfo, module: ModuleInfo, cls_info: ClassInfo
    ) -> None:
        for node in ast.walk(func.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            chain = _call_chain(node.value)
            if chain is None or chain[-1] != "register":
                continue
            call = node.value
            assert isinstance(call, ast.Call)
            if len(call.args) < 2:
                continue
            values, _complete = self.resolver.resolve(
                call.args[1], module, func, cls_info
            )
            if len(values) != 1:
                continue
            service = next(iter(values))
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self.mailboxes[(cls_info.qualname, target.attr)] = service

    def _bind_services(self) -> None:
        owners: Dict[str, Set[str]] = {}
        for (cls_qual, _attr), service in self.mailboxes.items():
            cls_info = self.index.classes.get(cls_qual)
            if cls_info is None:
                continue
            owners.setdefault(cls_info.name, set()).add(service)
        for role_name, services in owners.items():
            self.model.role(role_name).services = tuple(sorted(services))

    # -- per-function scan ------------------------------------------------

    def _role_name(
        self, func: FunctionInfo, class_ctx: Optional[ClassInfo]
    ) -> str:
        if class_ctx is not None:
            return class_ctx.name
        return func.module.rsplit(".", 1)[-1]

    def _scan_function(
        self,
        func: FunctionInfo,
        module: ModuleInfo,
        class_ctx: Optional[ClassInfo],
    ) -> None:
        role = self.model.role(self._role_name(func, class_ctx))
        has_liveness = self._function_has_liveness(func)
        send_results: Dict[str, ast.Call] = {}
        event_names: Set[str] = set()
        any_remote_send = False

        for node in ast.walk(func.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                chain = _call_chain(node.value)
                if isinstance(target, ast.Name) and chain is not None:
                    if chain[-1] == "send":
                        send_results[target.id] = node.value  # type: ignore[assignment]
                    elif chain[-1] == "Event":
                        event_names.add(target.id)
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None:
                continue
            tail = chain[-1]
            if tail == "send" and self._looks_like_transport_send(node):
                op = self._send_op(node, func, module, class_ctx, role,
                                   has_liveness)
                role.sends.append(op)
                if op.remote:
                    any_remote_send = True
            elif tail == "barrier_arrive":
                role.barriers.append(self._barrier_op(node, func, role,
                                                      "arrive"))
            elif tail == "barrier_release":
                role.barriers.append(self._barrier_op(node, func, role,
                                                      "release"))
            elif tail == "wait" and any(
                "barrier" in part for part in chain[:-1]
            ):
                role.barriers.append(self._barrier_op(node, func, role,
                                                      "wait"))

        self._scan_receive_loops(func, module, class_ctx, role)
        self._scan_waits(
            func, role, send_results, event_names, any_remote_send,
            has_liveness,
        )

    def _looks_like_transport_send(self, call: ast.Call) -> bool:
        kwarg_names = {kw.arg for kw in call.keywords}
        if {"service", "kind"} <= kwarg_names:
            return True
        return len(call.args) >= 5 and not call.keywords

    def _kwarg(self, call: ast.Call, name: str) -> Optional[ast.AST]:
        for kw in call.keywords:
            if kw.arg == name:
                return kw.value
        return None

    def _send_op(
        self,
        call: ast.Call,
        func: FunctionInfo,
        module: ModuleInfo,
        class_ctx: Optional[ClassInfo],
        role: RoleModel,
        has_liveness: bool,
    ) -> SendOp:
        service_expr = self._kwarg(call, "service")
        kind_expr = self._kwarg(call, "kind")
        if service_expr is None and len(call.args) >= 3:
            service_expr = call.args[2]
        if kind_expr is None and len(call.args) >= 4:
            kind_expr = call.args[3]
        service: Optional[str] = None
        if service_expr is not None:
            values, complete = self.resolver.resolve(
                service_expr, module, func, class_ctx
            )
            if complete and len(values) == 1:
                service = next(iter(values))
        kinds: Set[str] = set()
        kinds_complete = False
        if kind_expr is not None:
            kinds, kinds_complete = self.resolver.resolve(
                kind_expr, module, func, class_ctx
            )
        src_expr = self._kwarg(call, "src")
        dst_expr = self._kwarg(call, "dst")
        if src_expr is None and len(call.args) >= 1:
            src_expr = call.args[0]
        if dst_expr is None and len(call.args) >= 2:
            dst_expr = call.args[1]
        remote = True
        if src_expr is not None and dst_expr is not None:
            remote = dump_expr(src_expr, 999) != dump_expr(dst_expr, 999)
        return SendOp(
            role=role.name,
            qualname=func.qualname,
            file=func.file,
            line=call.lineno,
            service=service,
            kinds=tuple(sorted(kinds)),
            kinds_complete=kinds_complete,
            has_epoch=self._kwarg(call, "epoch") is not None,
            remote=remote,
            liveness=has_liveness,
        )

    def _barrier_op(
        self, call: ast.Call, func: FunctionInfo, role: RoleModel, op: str
    ) -> BarrierOp:
        return BarrierOp(
            role=role.name,
            qualname=func.qualname,
            file=func.file,
            line=call.lineno,
            op=op,
        )

    # -- receive loops ----------------------------------------------------

    def _scan_receive_loops(
        self,
        func: FunctionInfo,
        module: ModuleInfo,
        class_ctx: Optional[ClassInfo],
        role: RoleModel,
    ) -> None:
        for node in ast.walk(func.node):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Yield)
                and node.value.value is not None
            ):
                continue
            chain = _call_chain(node.value.value)
            if chain is None or chain[-1] != "get":
                continue
            msg_name = node.targets[0].id
            service = None
            if (
                class_ctx is not None
                and len(chain) == 3
                and chain[0] == "self"
            ):
                service = self.mailboxes.get(
                    (class_ctx.qualname, chain[1])
                )
            kinds, wildcard, epoch_guard = self._loop_dispatch(
                func, class_ctx, msg_name
            )
            role.receives.append(
                ReceiveLoop(
                    role=role.name,
                    qualname=func.qualname,
                    file=func.file,
                    line=node.lineno,
                    service=service,
                    kinds=tuple(sorted(kinds)),
                    wildcard=wildcard,
                    epoch_guard=epoch_guard,
                    epoch_aware=self._class_is_epoch_aware(class_ctx),
                )
            )

    def _loop_dispatch(
        self,
        func: FunctionInfo,
        class_ctx: Optional[ClassInfo],
        msg_name: str,
    ) -> Tuple[Set[str], bool, bool]:
        """(handled kinds, wildcard?, epoch guard?) of one receive loop."""
        kind_names = {f"{msg_name}.kind"}
        epoch_guard = False
        kinds: Set[str] = set()
        saw_dispatch = False
        # Local aliases: ``kind = message.kind``.
        for node in ast.walk(func.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                chain = attr_chain(node.value)
                if chain is not None and ".".join(chain) in kind_names:
                    kind_names.add(node.targets[0].id)
        for node in ast.walk(func.node):
            if isinstance(node, ast.Compare):
                left_chain = attr_chain(node.left)
                left = ".".join(left_chain) if left_chain else None
                if left == f"{msg_name}.epoch":
                    epoch_guard = True
                    continue
                if left in kind_names:
                    saw_dispatch = True
                    for comparator in node.comparators:
                        kinds |= self._literal_strings(comparator)
            elif isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if chain is None or chain[-1] != "getattr":
                    continue
                if not any(
                    isinstance(arg, ast.JoinedStr)
                    and "_handle_" in ast.unparse(arg)
                    for arg in node.args
                ):
                    continue
                saw_dispatch = True
                if class_ctx is not None:
                    kinds |= {
                        name[len("_handle_"):]
                        for name in class_ctx.methods
                        if name.startswith("_handle_")
                    }
        return kinds, not saw_dispatch, epoch_guard

    @staticmethod
    def _literal_strings(node: ast.AST) -> Set[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return {node.value}
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return {
                elt.value
                for elt in node.elts
                if isinstance(elt, ast.Constant)
                and isinstance(elt.value, str)
            }
        return set()

    def _class_is_epoch_aware(
        self, class_ctx: Optional[ClassInfo]
    ) -> bool:
        if class_ctx is None:
            return False
        for node in ast.walk(class_ctx.node):
            chain = attr_chain(node) if isinstance(node, ast.Attribute) else None
            if chain in (["self", "epoch"], ["self", "data_epoch"]):
                return True
        return False

    # -- waits ------------------------------------------------------------

    def _function_has_liveness(self, func: FunctionInfo) -> bool:
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            if _is_any_of_with_timeout(node):
                return True
            chain = attr_chain(node.func)
            if chain is not None and chain[-1] in self.timeout_functions:
                return True
        return False

    def _scan_waits(
        self,
        func: FunctionInfo,
        role: RoleModel,
        send_results: Dict[str, ast.Call],
        event_names: Set[str],
        any_remote_send: bool,
        has_liveness: bool,
    ) -> None:
        for node in ast.walk(func.node):
            expr = _yielded_expr(node) if isinstance(node, ast.stmt) else None
            if expr is None or not isinstance(expr, ast.Name):
                continue
            name = expr.id
            if name in send_results:
                send_call = send_results[name]
                src = self._kwarg(send_call, "src")
                dst = self._kwarg(send_call, "dst")
                remote = True
                if src is not None and dst is not None:
                    remote = dump_expr(src, 999) != dump_expr(dst, 999)
            elif name in event_names:
                remote = any_remote_send
            else:
                continue
            role.waits.append(
                WaitOp(
                    role=role.name,
                    qualname=func.qualname,
                    file=func.file,
                    line=node.lineno,
                    target=name,
                    remote=remote,
                    has_timeout=has_liveness,
                )
            )


def extract_model(index: ProjectIndex, graph=None) -> ProtocolModel:
    """Extract the protocol model from an indexed project.

    ``graph`` (a CallGraph) is accepted for future refinement but the
    extraction itself is index-driven.
    """
    return _Extractor(index).run()

"""Static analysis and dynamic sanitizers for the reproduction.

Two halves, both guarding the same invariant — every run is a
deterministic function of ``(config, seed)``:

:mod:`repro.analysis.lint`
    An AST-based lint engine with codebase-specific rules (CHX001 …
    CHX005) that catch determinism hazards at rest: wall-clock calls in
    simulated-clock packages, unseeded global randomness, compute code
    reaching past the :class:`~repro.store.engine.StorageEngine`
    mediation layer, simulator-process hygiene and nondeterministic
    iteration.  Exposed as ``chaos-repro check``.

:mod:`repro.analysis.sanitizer`
    A TSan-style happens-before race detector for the emulated cluster:
    vector clocks advanced by messages, barriers and steal-protocol
    handoffs, attached to cross-machine shared state (vertex values,
    accumulators, steal queues, chunk stores).  Exposed as
    ``chaos-repro run --sanitize``.
"""

from repro.analysis.baseline import (
    BASELINE_VERSION,
    baseline_stats,
    fingerprint,
    load_baseline,
    split_new,
    write_baseline,
)
from repro.analysis.findings import (
    Finding,
    format_github,
    format_json,
    format_text,
)
from repro.analysis.lint import FileContext, LintEngine, LintResult, Rule
from repro.analysis.rules import DEFAULT_RULES, default_rules, full_rule_table
from repro.analysis.sanitizer import Race, RaceAccess, Sanitizer

__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_RULES",
    "baseline_stats",
    "default_rules",
    "fingerprint",
    "full_rule_table",
    "load_baseline",
    "split_new",
    "write_baseline",
    "FileContext",
    "Finding",
    "format_github",
    "format_json",
    "format_text",
    "LintEngine",
    "LintResult",
    "Race",
    "RaceAccess",
    "Rule",
    "Sanitizer",
]

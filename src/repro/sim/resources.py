"""Queueing resources used to model hardware.

All hardware in the reproduction — storage devices, NIC directions, CPU
core banks — is modelled with two primitives:

:class:`FifoServer`
    A single-server FIFO queue with deterministic service times
    (``latency + size / bandwidth``).  Because the queue discipline is
    FIFO and service times are known on arrival, completion times are
    computed analytically in O(1) per request instead of simulating the
    queue, which keeps large simulations cheap.  This matches the paper's
    storage-engine behaviour: *"A storage engine always serves a request
    for a chunk in its entirety before serving the next request"*
    (Section 6.2).

:class:`CoreBank`
    A ``c``-server FIFO queue (c CPU cores): each job runs on the
    earliest-free core.

Both meters accumulate busy time so experiments can report utilization
(Figure 14 / Figure 16 analyses).
"""

from __future__ import annotations

import heapq
from typing import Any, Deque, List, Optional, Tuple
from collections import deque

from repro.sim.engine import Event, SimulationError, Simulator


class UtilizationMeter:
    """Tracks busy time and bytes served for a resource."""

    __slots__ = ("busy_time", "bytes_served", "requests")

    def __init__(self):
        self.busy_time = 0.0
        self.bytes_served = 0
        self.requests = 0

    def record(self, service_time: float, size: float) -> None:
        self.busy_time += service_time
        self.bytes_served += int(size)
        self.requests += 1

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the resource spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def throughput(self, elapsed: float) -> float:
        """Average bytes/second over ``elapsed``."""
        if elapsed <= 0:
            return 0.0
        return self.bytes_served / elapsed


class FifoServer:
    """Single-server FIFO queue with deterministic service times.

    ``service(size)`` returns an event firing when the request completes.
    Work conservation and FIFO order let us fold the whole queue into a
    single ``busy_until`` timestamp.
    """

    __slots__ = (
        "sim",
        "name",
        "bandwidth",
        "latency",
        "_busy_until",
        "meter",
        "_trace_track",
        "_trace_label",
        "_nominal_bandwidth",
    )

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        latency: float = 0.0,
        name: str = "",
    ):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self.sim = sim
        self.name = name
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self._nominal_bandwidth = float(bandwidth)
        self._busy_until = 0.0
        self.meter = UtilizationMeter()
        self._trace_track = None
        self._trace_label = name or "service"

    def degrade(self, factor: float) -> None:
        """Slow the server to ``nominal_bandwidth / factor``.

        Models a degraded device (slow-disk fault injection).  Requests
        already queued keep their completion times; only new arrivals
        see the reduced rate — the analytic FIFO fold makes partial
        re-queueing of in-flight work impossible, and a boundary at the
        fault instant is the behaviour a real FIFO disk queue shows
        anyway (commands already submitted complete at the old rate).
        """
        if factor <= 0:
            raise ValueError(f"degrade factor must be positive, got {factor}")
        self.bandwidth = self._nominal_bandwidth / factor

    def restore_bandwidth(self) -> None:
        """Undo :meth:`degrade`: back to the nominal service rate."""
        self.bandwidth = self._nominal_bandwidth

    def enable_trace(self, track, label: str = "") -> None:
        """Record every service interval as a span on ``track``.

        FIFO discipline guarantees the intervals on one server never
        overlap, so they form a well-defined busy timeline.
        """
        self._trace_track = track
        if label:
            self._trace_label = label

    def service_time(self, size: float) -> float:
        return self.latency + size / self.bandwidth

    def service(
        self, size: float, value: Any = None, label: Optional[str] = None
    ) -> Event:
        """Enqueue a request of ``size`` bytes; event fires at completion.

        ``label`` overrides the span name when tracing is enabled (the
        storage/network layers pass the operation kind).
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        start = max(self.sim.now, self._busy_until)
        duration = self.service_time(size)
        finish = start + duration
        self._busy_until = finish
        self.meter.record(duration, size)
        track = self._trace_track
        if track is not None:
            track.complete(
                label or self._trace_label,
                start,
                duration,
                args={"bytes": int(size)},
            )
        event = Event(self.sim, name=f"{self.name}.service")
        self.sim.schedule_at(finish, event.trigger, value)
        return event

    @property
    def busy_until(self) -> float:
        return self._busy_until

    def queue_delay(self) -> float:
        """Time a request arriving now would wait before service starts."""
        return max(0.0, self._busy_until - self.sim.now)


class CoreBank:
    """A bank of ``cores`` identical CPU cores with FIFO dispatch.

    Each ``execute(duration)`` request runs on the earliest-free core.
    """

    __slots__ = ("sim", "name", "cores", "_free_at", "meter",
                 "_trace_track", "_trace_label")

    def __init__(self, sim: Simulator, cores: int, name: str = ""):
        if cores < 1:
            raise ValueError(f"need at least one core, got {cores}")
        self.sim = sim
        self.name = name
        self.cores = int(cores)
        self._free_at: List[float] = [0.0] * self.cores
        heapq.heapify(self._free_at)
        self.meter = UtilizationMeter()
        self._trace_track = None
        self._trace_label = name or "exec"

    def enable_trace(self, track, label: str = "") -> None:
        """Record every job's core occupancy as a span on ``track``.

        Unlike a :class:`FifoServer`, spans from different cores of the
        bank overlap on the one track; consumers that want a busy
        *timeline* (e.g. the attribution analyzer) take the union of the
        intervals, while summing durations gives busy core-seconds.
        """
        self._trace_track = track
        if label:
            self._trace_label = label

    def execute(self, duration: float, value: Any = None) -> Event:
        """Run a job of ``duration`` CPU-seconds on the earliest-free core."""
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        free = heapq.heappop(self._free_at)
        start = max(self.sim.now, free)
        finish = start + duration
        heapq.heappush(self._free_at, finish)
        self.meter.record(duration, 0)
        track = self._trace_track
        if track is not None and duration > 0:
            track.complete(self._trace_label, start, duration)
        event = Event(self.sim, name=f"{self.name}.execute")
        self.sim.schedule_at(finish, event.trigger, value)
        return event

    def earliest_free(self) -> float:
        return self._free_at[0]

    def busy_cores(self, now: Optional[float] = None) -> int:
        """Cores still running a job at time ``now`` (telemetry probe)."""
        if now is None:
            now = self.sim.now
        return sum(1 for free_at in self._free_at if free_at > now)


class Semaphore:
    """Counting semaphore for processes (used for bounded request windows)."""

    __slots__ = ("sim", "capacity", "_available", "_waiters", "name")

    def __init__(self, sim: Simulator, capacity: int, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._available = capacity
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return self._available

    def acquire(self) -> Event:
        event = Event(self.sim, name=f"{self.name}.acquire")
        if self._available > 0:
            self._available -= 1
            event.trigger()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.trigger()
        else:
            self._available += 1
            if self._available > self.capacity:
                raise SimulationError(f"semaphore {self.name} over-released")


class Mailbox:
    """Unbounded FIFO channel between processes.

    ``put`` never blocks; ``get`` returns an event that fires when an
    item is available (immediately if the mailbox is non-empty).
    """

    __slots__ = ("sim", "name", "_items", "_getters")

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            getter = self._getters.popleft()
            getter.trigger(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.sim, name=f"{self.name}.get")
        if self._items:
            event.trigger(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Tuple[bool, Optional[Any]]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def reset(self) -> int:
        """Drop queued items and abandon blocked getters; return #dropped.

        Fault recovery uses this when a machine's consumer process was
        killed: messages delivered after the crash must not be consumed
        by a stale ``get`` event (whose waiter no longer exists) or leak
        into the restarted consumer's epoch.
        """
        dropped = len(self._items)
        self._items.clear()
        self._getters.clear()
        return dropped

"""Core discrete-event engine: simulator clock, events and processes.

The model follows the classic generator-coroutine style: a *process* is a
Python generator that ``yield``\\ s :class:`Event` objects; the simulator
resumes the generator when the yielded event fires, sending the event's
value back into the generator.  Time only advances between events.

Determinism: events scheduled for the same timestamp fire in FIFO order
of scheduling (a monotone sequence number breaks ties), so simulations
are exactly reproducible for a given seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. double trigger)."""


class DeadlineExceeded(SimulationError):
    """A watchdog deadline fired before the run completed.

    The chaos fuzzer arms one per episode: a fault schedule that wedges
    the cluster (livelock, recovery loop, lost wakeup) would otherwise
    run the simulation forever — simulated time advances, nothing
    completes.  The watchdog callback raises this out of the run loop,
    turning a hang into a reportable, shrinkable violation.
    """


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event starts *untriggered*; calling :meth:`trigger` (or
    :meth:`fail`) fires it, invoking all registered callbacks with the
    event itself.  Processes wait on events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_triggered", "_value", "_failed", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._triggered = False
        self._failed = False
        self._value: Any = None
        self.name = name

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def failed(self) -> bool:
        return self._failed

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} has no value yet")
        return self._value

    def trigger(self, value: Any = None) -> "Event":
        """Fire the event now, delivering ``value`` to all waiters."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event as a failure; waiting processes see the exception."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._failed = True
        self._value = exception
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)
        return self

    def subscribe(self, callback: Callable[["Event"], None]) -> None:
        """Invoke ``callback(event)`` when the event fires (or immediately
        if it already has)."""
        if self._triggered:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self._triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class AllOf(Event):
    """Composite event that fires when *all* child events have fired.

    Its value is the list of the children's values in the original order.
    If any child fails, the composite fails with that child's exception.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.trigger([])
            return
        for child in self._children:
            child.subscribe(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            return
        if child.failed:
            self.fail(child.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.trigger([c.value for c in self._children])


class AnyOf(Event):
    """Composite event that fires when *any* child event fires.

    Its value is a ``(event, value)`` pair identifying which child fired
    first.
    """

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one event")
        for child in self._children:
            child.subscribe(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            return
        if child.failed:
            self.fail(child.value)
            return
        self.trigger((child, child.value))


ProcessGenerator = Generator[Event, Any, Any]


class Process:
    """A generator coroutine driven by the simulator.

    The wrapped generator yields :class:`Event` objects; when a yielded
    event fires, the generator is resumed with the event's value.  When
    the generator returns, :attr:`finished` fires with its return value.
    """

    __slots__ = ("sim", "name", "_gen", "finished", "_waiting_on", "_interrupts")

    def __init__(self, sim: "Simulator", gen: ProcessGenerator, name: str = ""):
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self.finished = Event(sim, name=f"{self.name}.finished")
        self._waiting_on: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        # Start the process at the current simulated time, but *after*
        # the caller finishes its own step: schedule with zero delay.
        sim.schedule(0.0, self._resume, None, None)
        # Lifecycle hook (observability): announce creation/completion.
        hook = sim.process_hook
        if hook is not None:
            hook(self, "start")
            self.finished.subscribe(lambda _e: hook(self, "finish"))

    @property
    def alive(self) -> bool:
        return not self.finished.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current wait."""
        if not self.alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        self._interrupts.append(Interrupt(cause))
        self.sim.schedule(0.0, self._deliver_interrupts)

    def kill(self, cause: Any = None) -> None:
        """Interrupt the process if it is still alive; no-op otherwise.

        Fault injection uses this to fence a crashed machine's processes:
        unlike :meth:`interrupt`, killing an already-finished process is
        not an error (the supervisor cannot know which of a machine's
        processes happened to finish before the crash struck).
        """
        if self.alive:
            self.interrupt(cause)

    def _deliver_interrupts(self) -> None:
        if not self.alive and self._interrupts:
            self._interrupts.clear()
            return
        while self._interrupts and self.alive:
            interrupt = self._interrupts.pop(0)
            self._waiting_on = None
            self._step(throw=interrupt)

    def _resume(self, event: Optional[Event], _unused: Any = None) -> None:
        self._step(value=event.value if event is not None else None)

    def _on_event(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wakeup (e.g. after an interrupt retargeted us)
        self._waiting_on = None
        if event.failed:
            self._step(throw=event.value)
        else:
            self._step(value=event.value)

    def _step(self, value: Any = None, throw: Optional[BaseException] = None) -> None:
        try:
            if throw is not None:
                target = self._gen.throw(throw)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.finished.trigger(stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt: terminate quietly.
            self.finished.trigger(None)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name} yielded {target!r}; processes must yield Events"
            )
        self._waiting_on = target
        target.subscribe(self._on_event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "finished"
        return f"<Process {self.name!r} {state}>"


class Simulator:
    """The discrete-event loop: a clock plus a time-ordered callback heap."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        self._running = False
        #: Optional lifecycle hook ``fn(process, phase)`` invoked with
        #: ``phase in ("start", "finish")`` for every process — the
        #: tracer uses it for process naming; ``None`` costs nothing.
        self.process_hook: Optional[Callable[["Process", str], None]] = None

    # -- scheduling ---------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, args))

    def schedule_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated time ``when``."""
        self.schedule(when - self.now, fn, *args)

    # -- event factories ----------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` seconds from now."""
        event = Event(self, name=f"timeout({delay:g})")
        self.schedule(delay, event.trigger, value)
        return event

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def process(self, gen: ProcessGenerator, name: str = "") -> Process:
        """Register a generator as a simulation process."""
        return Process(self, gen, name=name)

    # -- execution ----------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event heap.

        Stops when the heap is empty, when the clock would pass ``until``,
        or after ``max_events`` callbacks (a runaway guard).  Returns the
        final simulated time.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        count = 0
        try:
            while self._heap:
                when, _seq, fn, args = self._heap[0]
                if until is not None and when > until:
                    self.now = until
                    break
                heapq.heappop(self._heap)
                self.now = when
                fn(*args)
                count += 1
                if max_events is not None and count >= max_events:
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events}"
                    )
        finally:
            self._running = False
        return self.now

    def run_until(self, event: Event, max_events: Optional[int] = None) -> Any:
        """Run until ``event`` fires; return its value (raise on failure)."""
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        count = 0
        try:
            while not event.triggered:
                if not self._heap:
                    raise SimulationError(
                        f"deadlock: event {event.name!r} can never fire "
                        f"(event heap empty at t={self.now:g})"
                    )
                when, _seq, fn, args = heapq.heappop(self._heap)
                self.now = when
                fn(*args)
                count += 1
                if max_events is not None and count >= max_events:
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events}"
                    )
        finally:
            self._running = False
        if event.failed:
            raise event.value
        return event.value

"""Discrete-event simulation kernel.

This package provides the minimal but complete discrete-event machinery
the Chaos reproduction is built on: a :class:`~repro.sim.engine.Simulator`
event loop, generator-based :class:`~repro.sim.engine.Process` objects,
composable :class:`~repro.sim.engine.Event` primitives, and the queueing
resources (:mod:`repro.sim.resources`) used to model storage devices,
NICs and CPU cores.

The kernel is deliberately self-contained (no simpy dependency) and uses
an *analytic FIFO server* model for bandwidth resources: a single-server
FIFO queue's completion times can be computed in O(1) per request, which
keeps cluster-scale simulations fast while remaining exactly equivalent
to simulating the queue explicitly.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
)
from repro.sim.resources import (
    CoreBank,
    FifoServer,
    Mailbox,
    Semaphore,
    UtilizationMeter,
)
from repro.sim.sync import Barrier, Latch, WaitGroup

__all__ = [
    "Barrier",
    "Latch",
    "WaitGroup",
    "AllOf",
    "AnyOf",
    "CoreBank",
    "Event",
    "FifoServer",
    "Interrupt",
    "Mailbox",
    "Process",
    "Semaphore",
    "SimulationError",
    "Simulator",
    "UtilizationMeter",
]

"""Synchronization helpers built on the event kernel.

Chaos places a global barrier after every scatter phase and every gather
phase (Section 4).  :class:`Barrier` is a reusable cyclic barrier whose
``wait`` events also record per-party waiting time, feeding the runtime
breakdown of Figure 17.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.engine import Event, SimulationError, Simulator


class Barrier:
    """Reusable cyclic barrier for a fixed set of parties.

    Each party calls :meth:`wait`, receiving an event that fires when all
    parties of the current generation have arrived.  The barrier then
    resets for the next generation.
    """

    def __init__(
        self,
        sim: Simulator,
        parties: int,
        name: str = "barrier",
        sanitizer=None,
    ):
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        self.sim = sim
        self.name = name
        self.parties = parties
        self.generation = 0
        self._arrived: List[Event] = []
        self._arrival_times: List[float] = []
        self._arrival_parties: List[Optional[int]] = []
        self._san = (
            sanitizer if sanitizer is not None and sanitizer.enabled else None
        )
        # Total time spent waiting at this barrier, per party index order
        # of arrival (aggregated, for diagnostics).
        self.total_wait_time = 0.0
        # Stall detection (fault tolerance): if a generation stays open
        # longer than ``_stall_timeout`` after its first arrival, the
        # watchdog reports the missing parties — the mechanism by which
        # the barrier coordinator notices a dead peer and can trigger a
        # cluster-wide rollback.
        self._stall_timeout: Optional[float] = None
        self._on_stall = None
        self._watched_generation = -1

    def set_stall_watch(self, timeout: float, callback) -> None:
        """Arm stall detection: ``callback(missing_parties, generation)``.

        The callback fires at most once per generation, ``timeout``
        seconds after the generation's first arrival if the barrier has
        not released by then.  ``missing_parties`` lists the party ids
        that have not arrived (parties that waited anonymously cannot be
        attributed and are not listed).
        """
        if timeout <= 0:
            raise ValueError(f"stall timeout must be positive, got {timeout}")
        self._stall_timeout = timeout
        self._on_stall = callback

    def _watch_generation(self, generation: int) -> None:
        if self._watched_generation >= generation:
            return
        self._watched_generation = generation
        self.sim.schedule(self._stall_timeout, self._check_stall, generation)

    def _check_stall(self, generation: int) -> None:
        if self.generation != generation or not self._arrived:
            return  # released (or reset) in time
        if self._on_stall is None:
            return
        missing = [
            p
            for p in range(self.parties)
            if p not in self._arrival_parties
        ]
        self._on_stall(missing, generation)

    def wait(self, party: Optional[int] = None) -> Event:
        """Arrive at the barrier; the returned event fires on release.

        ``party`` optionally identifies the arriving machine so the
        happens-before sanitizer can join every party's vector clock at
        the release (a barrier orders everything before it on any
        machine with everything after it on every machine).
        """
        if len(self._arrived) >= self.parties:
            raise SimulationError(f"barrier {self.name}: too many arrivals")
        event = Event(self.sim, name=f"{self.name}.wait(gen={self.generation})")
        self._arrived.append(event)
        self._arrival_times.append(self.sim.now)
        self._arrival_parties.append(party)
        if self._stall_timeout is not None and len(self._arrived) == 1:
            self._watch_generation(self.generation)
        if len(self._arrived) == self.parties:
            release_time = self.sim.now
            waiters, self._arrived = self._arrived, []
            times, self._arrival_times = self._arrival_times, []
            parties, self._arrival_parties = self._arrival_parties, []
            for arrival in times:
                self.total_wait_time += release_time - arrival
            self.generation += 1
            if self._san is not None:
                self._san.on_barrier(parties)
            for waiter in waiters:
                waiter.trigger(self.generation)
        return event

    @property
    def waiting(self) -> int:
        return len(self._arrived)


class Latch:
    """Count-down latch: fires its event after ``count`` calls to
    :meth:`count_down`."""

    def __init__(self, sim: Simulator, count: int, name: str = "latch"):
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.sim = sim
        self.name = name
        self._remaining = count
        self.done = Event(sim, name=f"{name}.done")
        if count == 0:
            self.done.trigger()

    @property
    def remaining(self) -> int:
        return self._remaining

    def count_down(self) -> None:
        if self._remaining <= 0:
            raise SimulationError(f"latch {self.name} already released")
        self._remaining -= 1
        if self._remaining == 0:
            self.done.trigger()


class WaitGroup:
    """Dynamic latch: add work with :meth:`add`, finish with :meth:`done_one`.

    ``wait()`` returns an event that fires when the outstanding count
    drops to zero (immediately if already zero).
    """

    def __init__(self, sim: Simulator, name: str = "waitgroup"):
        self.sim = sim
        self.name = name
        self._outstanding = 0
        self._waiters: List[Event] = []

    @property
    def outstanding(self) -> int:
        return self._outstanding

    def add(self, count: int = 1) -> None:
        if count < 0:
            raise ValueError("count must be >= 0")
        self._outstanding += count

    def done_one(self) -> None:
        if self._outstanding <= 0:
            raise SimulationError(f"waitgroup {self.name} negative count")
        self._outstanding -= 1
        if self._outstanding == 0:
            waiters, self._waiters = self._waiters, []
            for waiter in waiters:
                waiter.trigger()

    def wait(self) -> Event:
        event = Event(self.sim, name=f"{self.name}.wait")
        if self._outstanding == 0:
            event.trigger()
        else:
            self._waiters.append(event)
        return event

"""k-core decomposition (peeling), an extension algorithm.

Not part of the paper's Table 1, but a standard member of the X-Stream
algorithm family and a natural fit for the edge-centric model: removing
a vertex notifies its neighbours over its edges, which is exactly a GAS
update.  Included as a first-class algorithm (and as the worked example
in ``examples/custom_algorithm.py``) to demonstrate the extension
surface.

:class:`KCore` peels to a single k-core; :func:`run_kcore_decomposition`
sweeps k to produce every vertex's coreness, reusing each fixpoint as
the next k's warm start (peeling is monotone in k).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import ClusterConfig
from repro.core.gas import GasAlgorithm, GraphContext, State
from repro.core.runtime import run_algorithm
from repro.graph.edgelist import EdgeList


class KCore(GasAlgorithm):
    """Peel an undirected graph to its k-core.

    Final state: ``alive`` marks k-core membership; ``degree`` holds the
    induced degree within the surviving subgraph.
    """

    name = "KCore"
    needs_undirected = True
    needs_out_degrees = True
    update_bytes = 8
    vertex_bytes = 8
    accum_bytes = 4
    max_iterations = None  # peel until quiescent

    def __init__(
        self,
        k: int,
        alive: Optional[np.ndarray] = None,
        degree: Optional[np.ndarray] = None,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._alive = alive
        self._degree = degree

    def init_values(self, ctx: GraphContext) -> State:
        if self._alive is not None:
            alive = self._alive.copy()
            degree = self._degree.copy()
        else:
            if ctx.out_degrees is None:
                raise ValueError("KCore requires out-degrees")
            alive = np.ones(ctx.num_vertices, dtype=bool)
            degree = ctx.out_degrees.astype(np.int64).copy()
        died = alive & (degree < self.k)
        alive[died] = False
        return {"alive": alive, "degree": degree, "died_last": died}

    def scatter(self, values, src_local, dst, weight, iteration):
        dying = values["died_last"][src_local]
        if not dying.any():
            return None
        return dst[dying], np.ones(int(dying.sum()), dtype=np.int64)

    def make_accumulator(self, n: int) -> np.ndarray:
        return np.zeros(n, dtype=np.int64)

    def gather(self, accum, dst_local, values, state=None) -> None:
        np.add.at(accum, dst_local, values)

    def merge(self, accum: np.ndarray, other: np.ndarray) -> None:
        accum += other

    def combine_updates(self, dst, values):
        from repro.algorithms.combiners import combine_by_sum

        return combine_by_sum(dst, values)

    def apply(self, values: State, accum: np.ndarray, iteration: int) -> int:
        values["degree"] -= accum
        died = values["alive"] & (values["degree"] < self.k)
        values["alive"][died] = False
        values["died_last"][:] = died
        return int(np.count_nonzero(died))


def run_kcore_decomposition(
    edges: EdgeList,
    config: Optional[ClusterConfig] = None,
    **config_overrides,
) -> dict:
    """Coreness of every vertex, by sweeping k on the cluster.

    Returns ``{"coreness": array, "degeneracy": int, "runtime": float}``
    (runtime summed over the per-k jobs).
    """
    if config is None:
        config = ClusterConfig(**config_overrides)
    elif config_overrides:
        config = config.with_(**config_overrides)

    coreness = np.zeros(edges.num_vertices, dtype=np.int64)
    alive = None
    degree = None
    runtime = 0.0
    k = 1
    while True:
        result = run_algorithm(KCore(k, alive, degree), edges, config)
        runtime += result.runtime
        alive = result.values["alive"]
        degree = result.values["degree"]
        if not alive.any():
            break
        coreness[alive] = k
        k += 1
    return {
        "coreness": coreness,
        "degeneracy": int(coreness.max(initial=0)),
        "runtime": runtime,
    }

"""Conductance of a vertex bisection — a single streaming pass.

The conductance of a cut (S, S̄) is

    cond(S) = |edges crossing the cut| / min(vol(S), vol(S̄))

where vol(X) is the total degree of X.  As in X-Stream's benchmark, S is
a fixed predicate on vertex ids (default: the low half of the id
space).  One scatter/gather pass counts crossing edges: scatter sends
the source's side bit; gather (which can see the destination's side in
the vertex state) counts mismatches.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.gas import GasAlgorithm, GraphContext, State


class Conductance(GasAlgorithm):
    """One-pass conductance of the id-space bisection (directed input)."""

    name = "Cond"
    needs_out_degrees = True
    update_bytes = 8
    vertex_bytes = 8
    accum_bytes = 4
    max_iterations = 1

    def __init__(self, split_fraction: float = 0.5):
        if not 0.0 < split_fraction < 1.0:
            raise ValueError("split_fraction must be in (0, 1)")
        self.split_fraction = split_fraction
        self.result: Optional[float] = None
        self._volumes = (0.0, 0.0)

    def init_values(self, ctx: GraphContext) -> State:
        threshold = int(ctx.num_vertices * self.split_fraction)
        side = (np.arange(ctx.num_vertices) >= threshold).astype(np.int8)
        degrees = (
            ctx.out_degrees
            if ctx.out_degrees is not None
            else np.zeros(ctx.num_vertices)
        )
        vol_s = float(degrees[side == 0].sum())
        vol_t = float(degrees[side == 1].sum())
        self._volumes = (vol_s, vol_t)
        return {
            "side": side,
            "crossing": np.zeros(ctx.num_vertices, dtype=np.int64),
        }

    def scatter(self, values, src_local, dst, weight, iteration):
        return dst, values["side"][src_local].astype(np.int64)

    def make_accumulator(self, n: int) -> np.ndarray:
        return np.zeros(n, dtype=np.int64)

    def gather(self, accum, dst_local, values, state=None) -> None:
        if state is None:
            raise ValueError("Conductance gather needs the vertex state")
        crossing = values != state["side"][dst_local]
        np.add.at(accum, dst_local[crossing], 1)

    def merge(self, accum: np.ndarray, other: np.ndarray) -> None:
        accum += other

    def apply(self, values: State, accum: np.ndarray, iteration: int) -> int:
        values["crossing"][:] = accum
        return int(np.count_nonzero(accum))

    def finished(self, iteration: int, stats) -> bool:
        return True  # single pass

    def conductance_from_values(self, values: State) -> float:
        """Compute the scalar result from the final vertex state."""
        crossing = float(values["crossing"].sum())
        vol_s, vol_t = self._volumes
        denominator = min(vol_s, vol_t)
        if denominator == 0:
            return 0.0
        return crossing / denominator

"""Loopy belief propagation (binary pairwise MRF), fixed iterations.

A simplified sum-product BP matching the X-Stream benchmark's structure:
each vertex holds a belief (log-odds of a binary variable); each
iteration every vertex broadcasts a message derived from its belief over
its outgoing edges, and the new belief combines the vertex prior with
the damped sum of incoming messages.  Edge weights (when present) act as
coupling strengths.

This is the "broadcast" approximation of BP — messages are not
individualized per edge (no division by the reverse message), which is
the standard simplification for edge-centric engines where per-edge
message state would double storage.  The reference implementation in
the tests applies the identical update rule densely, so functional
correctness is exact with respect to this variant.
"""

from __future__ import annotations

import numpy as np

from repro.core.gas import GasAlgorithm, GraphContext, State


class BeliefPropagation(GasAlgorithm):
    """Damped log-domain belief propagation, fixed iteration count."""

    name = "BP"
    update_bytes = 8
    vertex_bytes = 8
    accum_bytes = 4

    def __init__(
        self,
        iterations: int = 5,
        coupling: float = 0.5,
        damping: float = 0.5,
        prior_seed: int = 0,
    ):
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.max_iterations = iterations
        self.coupling = coupling
        self.damping = damping
        self.prior_seed = prior_seed

    def init_values(self, ctx: GraphContext) -> State:
        rng = np.random.default_rng(self.prior_seed)
        prior = rng.normal(0.0, 1.0, size=ctx.num_vertices)
        return {"prior": prior, "belief": prior.copy()}

    def _message(self, belief: np.ndarray) -> np.ndarray:
        # Pairwise potential folded into a tanh attenuation of the
        # sender's belief (the standard log-domain BP message for a
        # symmetric binary potential with strength `coupling`).
        return 2.0 * np.arctanh(
            np.tanh(self.coupling) * np.tanh(belief / 2.0)
        )

    def scatter(self, values, src_local, dst, weight, iteration):
        message = self._message(values["belief"][src_local])
        if weight is not None:
            message = message * weight
        return dst, message

    def make_accumulator(self, n: int) -> np.ndarray:
        return np.zeros(n, dtype=np.float64)

    def gather(self, accum, dst_local, values, state=None) -> None:
        np.add.at(accum, dst_local, values)

    def merge(self, accum: np.ndarray, other: np.ndarray) -> None:
        accum += other

    def combine_updates(self, dst, values):
        from repro.algorithms.combiners import combine_by_sum

        return combine_by_sum(dst, values)

    def apply(self, values: State, accum: np.ndarray, iteration: int) -> int:
        new_belief = (1.0 - self.damping) * values["belief"] + self.damping * (
            values["prior"] + accum
        )
        changed = int(np.count_nonzero(new_belief != values["belief"]))
        values["belief"][:] = new_belief
        return changed

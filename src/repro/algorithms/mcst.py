"""Minimum cost spanning tree/forest (Borůvka with edge contraction).

Each Borůvka round runs two GAS jobs over the current (contracted)
edge list and then rewrites the edges:

1. **Min-edge pick** (one iteration): every vertex selects its
   minimum-weight incident edge under a globally consistent total order
   on edges — the key ``(weight, min endpoint, max endpoint)`` — which
   guarantees the chosen-edge graph is a pseudo-forest whose only cycles
   are mutual pairs.

2. **Hook-propagate** (to quiescence): component labels flow down the
   chosen-edge trees.  A vertex adopts the label of its chosen parent;
   the smaller endpoint of each mutual pair is the tree root and keeps
   its own id.  At quiescence every tree member holds the root's id.

The driver then adds each non-root's chosen edge to the forest (exactly
the n−1 tree edges per component), relabels edge endpoints with the new
component ids, drops self-loops, and repeats until no edges remain.
Edge rewriting between rounds is the model extension the paper notes in
Section 6.1 (footnote 2); its streaming cost is charged as the next
round's pre-processing pass.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.drivers import DriverResult
from repro.core.config import ClusterConfig
from repro.core.gas import GasAlgorithm, GraphContext, State
from repro.core.runtime import ChaosCluster
from repro.graph.edgelist import EdgeList

_PICK_DTYPE = np.dtype(
    [("weight", np.float64), ("k1", np.int64), ("k2", np.int64), ("src", np.int64)]
)
_HOOK_DTYPE = np.dtype(
    [("src", np.int64), ("src_chosen", np.int64), ("comp", np.int64)]
)


class _MinEdgePick(GasAlgorithm):
    """Round phase 1: per-vertex minimum incident edge (one iteration)."""

    name = "MCST/pick"
    needs_undirected = True
    needs_weights = True
    update_bytes = 16
    vertex_bytes = 16
    accum_bytes = 16
    max_iterations = 1

    def init_values(self, ctx: GraphContext) -> State:
        return {
            "vid": np.arange(ctx.num_vertices, dtype=np.int64),
            "chosen": np.full(ctx.num_vertices, -1, dtype=np.int64),
            "chosen_weight": np.full(ctx.num_vertices, np.inf, dtype=np.float64),
        }

    def scatter(self, values, src_local, dst, weight, iteration):
        src_vid = values["vid"][src_local]
        payload = np.empty(len(dst), dtype=_PICK_DTYPE)
        payload["weight"] = weight
        payload["k1"] = np.minimum(src_vid, dst)
        payload["k2"] = np.maximum(src_vid, dst)
        payload["src"] = src_vid
        return dst, payload

    def make_accumulator(self, n: int) -> np.ndarray:
        accum = np.empty(n, dtype=_PICK_DTYPE)
        accum["weight"] = np.inf
        accum["k1"] = accum["k2"] = accum["src"] = -1
        return accum

    @staticmethod
    def _better(
        w, k1, k2, accum_w, accum_k1, accum_k2
    ) -> np.ndarray:
        """Lexicographic (weight, k1, k2) comparison, vectorized."""
        return (
            (w < accum_w)
            | ((w == accum_w) & (k1 < accum_k1))
            | ((w == accum_w) & (k1 == accum_k1) & (k2 < accum_k2))
        )

    def gather(self, accum, dst_local, values, state=None) -> None:
        # Reduce the chunk to one candidate per destination first
        # (sorted by dst, then edge key), then compare against accum.
        order = np.lexsort(
            (values["k2"], values["k1"], values["weight"], dst_local)
        )
        sorted_dst = dst_local[order]
        unique_dst, first = np.unique(sorted_dst, return_index=True)
        best = values[order[first]]
        better = self._better(
            best["weight"],
            best["k1"],
            best["k2"],
            accum["weight"][unique_dst],
            accum["k1"][unique_dst],
            accum["k2"][unique_dst],
        )
        accum[unique_dst[better]] = best[better]

    def merge(self, accum: np.ndarray, other: np.ndarray) -> None:
        better = self._better(
            other["weight"],
            other["k1"],
            other["k2"],
            accum["weight"],
            accum["k1"],
            accum["k2"],
        )
        accum[better] = other[better]

    def apply(self, values: State, accum: np.ndarray, iteration: int) -> int:
        picked = np.isfinite(accum["weight"])
        values["chosen"][picked] = accum["src"][picked]
        values["chosen_weight"][picked] = accum["weight"][picked]
        return int(np.count_nonzero(picked))


class _HookPropagate(GasAlgorithm):
    """Round phase 2: propagate root labels down the chosen-edge trees."""

    name = "MCST/hook"
    needs_undirected = True
    update_bytes = 16
    vertex_bytes = 16
    accum_bytes = 16
    max_iterations = None

    def __init__(self, chosen: np.ndarray):
        self._chosen = chosen

    def init_values(self, ctx: GraphContext) -> State:
        return {
            "vid": np.arange(ctx.num_vertices, dtype=np.int64),
            "chosen": self._chosen.copy(),
            "comp": np.arange(ctx.num_vertices, dtype=np.int64),
            # Every vertex that picked an edge announces in iteration 0.
            "active": self._chosen >= 0,
        }

    def scatter(self, values, src_local, dst, weight, iteration):
        selected = values["active"][src_local]
        if not selected.any():
            return None
        index = src_local[selected]
        payload = np.empty(int(selected.sum()), dtype=_HOOK_DTYPE)
        payload["src"] = values["vid"][index]
        payload["src_chosen"] = values["chosen"][index]
        payload["comp"] = values["comp"][index]
        return dst[selected], payload

    def make_accumulator(self, n: int) -> np.ndarray:
        accum = np.empty(n, dtype=_HOOK_DTYPE)
        accum["src"] = accum["src_chosen"] = accum["comp"] = -1
        return accum

    def gather(self, accum, dst_local, values, state=None) -> None:
        if state is None:
            raise ValueError("hook propagation needs the vertex state")
        # Accept only the message from the destination's chosen parent.
        from_parent = state["chosen"][dst_local] == values["src"]
        index = dst_local[from_parent]
        accum[index] = values[from_parent]

    def merge(self, accum: np.ndarray, other: np.ndarray) -> None:
        fresh = other["src"] != -1
        accum[fresh] = other[fresh]

    def apply(self, values: State, accum: np.ndarray, iteration: int) -> int:
        has_parent = accum["src"] != -1
        mutual_root = (
            has_parent
            & (accum["src_chosen"] == values["vid"])
            & (values["vid"] < accum["src"])
        )
        adopt = has_parent & ~mutual_root
        changed = adopt & (values["comp"] != accum["comp"])
        values["comp"][changed] = accum["comp"][changed]
        values["active"][:] = changed
        return int(np.count_nonzero(changed))


def run_mcst(
    edges: EdgeList,
    config: Optional[ClusterConfig] = None,
    tracer=None,
    sanitizer=None,
    **config_overrides,
) -> DriverResult:
    """Compute the minimum spanning forest of an undirected weighted graph.

    ``edges`` must contain both orientations of every undirected edge
    (use :func:`repro.graph.convert.to_undirected`).  The result's
    ``values`` hold the total forest weight (``mst_weight``) and the
    final component label of every vertex (``component``).
    """
    if config is None:
        config = ClusterConfig(**config_overrides)
    elif config_overrides:
        config = config.with_(**config_overrides)
    if not edges.weighted:
        raise ValueError("MCST requires edge weights")

    num_vertices = edges.num_vertices
    comp_global = np.arange(num_vertices, dtype=np.int64)
    current = edges
    total_weight = 0.0
    tree_edges = 0
    jobs = []
    rounds = 0

    while current.num_edges > 0:
        rounds += 1
        cluster = ChaosCluster(config, tracer=tracer, sanitizer=sanitizer)
        pick_job = cluster.run(_MinEdgePick(), current)
        jobs.append(pick_job)
        chosen = pick_job.values["chosen"]
        chosen_weight = pick_job.values["chosen_weight"]

        hook_job = ChaosCluster(config, tracer=tracer, sanitizer=sanitizer).run(
            _HookPropagate(chosen), current
        )
        jobs.append(hook_job)
        comp_round = hook_job.values["comp"]

        # Every non-root with a chosen edge contributes exactly one tree
        # edge (its parent pointer).
        non_root = (chosen >= 0) & (
            comp_round != np.arange(num_vertices, dtype=np.int64)
        )
        total_weight += float(chosen_weight[non_root].sum())
        tree_edges += int(np.count_nonzero(non_root))

        # Contract: relabel endpoints with component ids, drop self-loops.
        comp_global = comp_round[comp_global]
        new_src = comp_round[current.src]
        new_dst = comp_round[current.dst]
        keep = new_src != new_dst
        current = EdgeList(
            num_vertices=num_vertices,
            src=new_src[keep],
            dst=new_dst[keep],
            weight=current.weight[keep],
        )

    runtime = sum(job.runtime for job in jobs)
    return DriverResult(
        algorithm="MCST",
        machines=config.machines,
        runtime=runtime,
        rounds=rounds,
        jobs=jobs,
        values={
            "mst_weight": total_weight,
            "tree_edges": tree_edges,
            "component": comp_global,
        },
    )

"""Maximal independent set (deterministic Luby-style greedy).

Runs on an undirected graph.  Every vertex starts *undecided*.  Each
iteration:

* undecided vertices scatter their id;
* vertices that joined the MIS in the previous iteration scatter the
  sentinel ``-1`` (which dominates any id under min-gather);
* gather keeps the minimum incoming value;
* apply: an undecided vertex whose accumulator is ``-1`` has an MIS
  neighbor and becomes *excluded*; an undecided vertex whose own id is
  smaller than every undecided neighbor's id joins the MIS.

Two adjacent vertices can never join simultaneously (each sees the
other's id), decided vertices stop competing, and the minimum-id
undecided vertex always makes progress, so the algorithm terminates
with a maximal independent set.
"""

from __future__ import annotations

import numpy as np

from repro.core.gas import GasAlgorithm, GraphContext, State

UNDECIDED = 0
IN_SET = 1
EXCLUDED = 2

_MIS_SENTINEL = -1


class MIS(GasAlgorithm):
    """Maximal independent set; final state in the ``status`` array."""

    name = "MIS"
    needs_undirected = True
    needs_out_degrees = True
    update_bytes = 8
    vertex_bytes = 8
    accum_bytes = 4
    max_iterations = None

    def __init__(self):
        self._identity = np.iinfo(np.int64).max

    def init_values(self, ctx: GraphContext) -> State:
        status = np.full(ctx.num_vertices, UNDECIDED, dtype=np.int8)
        # Isolated vertices are trivially in every MIS; deciding them up
        # front keeps the invariant that every remaining undecided
        # vertex emits updates each iteration (so quiescence == done).
        if ctx.out_degrees is not None:
            status[ctx.out_degrees == 0] = IN_SET
        return {
            "vid": np.arange(ctx.num_vertices, dtype=np.int64),
            "status": status,
            "joined_last": np.zeros(ctx.num_vertices, dtype=bool),
        }

    def scatter(self, values, src_local, dst, weight, iteration):
        status = values["status"][src_local]
        undecided = status == UNDECIDED
        announcing = values["joined_last"][src_local]
        selected = undecided | announcing
        if not selected.any():
            return None
        payload = np.where(
            announcing[selected],
            _MIS_SENTINEL,
            values["vid"][src_local[selected]],
        )
        return dst[selected], payload

    def make_accumulator(self, n: int) -> np.ndarray:
        return np.full(n, self._identity, dtype=np.int64)

    def gather(self, accum, dst_local, values, state=None) -> None:
        np.minimum.at(accum, dst_local, values)

    def merge(self, accum: np.ndarray, other: np.ndarray) -> None:
        np.minimum(accum, other, out=accum)

    def apply(self, values: State, accum: np.ndarray, iteration: int) -> int:
        status = values["status"]
        undecided = status == UNDECIDED
        # Neighbour joined the set -> exclusion dominates.
        excluded = undecided & (accum == _MIS_SENTINEL)
        status[excluded] = EXCLUDED
        # Smaller id than every remaining undecided neighbour -> join.
        # Vertices with no undecided neighbours (identity accumulator)
        # also join: nothing contests them.
        still_undecided = (status == UNDECIDED)
        joins = still_undecided & (values["vid"] < accum)
        status[joins] = IN_SET
        values["joined_last"][:] = joins
        return int(np.count_nonzero(excluded) + np.count_nonzero(joins))

"""Breadth-first search (BFS) — the paper's headline capacity algorithm.

BFS runs on an undirected graph (Table 1).  The frontier discovered in
iteration *t* scatters its vertex id over all incident edges; gather
takes the minimum proposed parent; apply marks newly discovered vertices
(distance *t+1*) as the next frontier.  The job terminates when a
scatter produces no updates (empty frontier).

Note the edge-centric streaming property this inherits from X-Stream:
every scatter phase streams the *entire* edge set, even when the
frontier is small — the per-iteration I/O is what makes the RMAT-36 BFS
of Section 9.3 read ~214 TB for a 16 TB graph.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.gas import GasAlgorithm, GraphContext, State


class BFS(GasAlgorithm):
    """Parallel BFS from a root vertex; computes parent and distance."""

    name = "BFS"
    needs_undirected = True
    update_bytes = 8  # destination id + proposed parent id (compact)
    vertex_bytes = 8
    accum_bytes = 4
    max_iterations = None  # run until the frontier empties

    def __init__(self, root: int = 0):
        if root < 0:
            raise ValueError("root must be a valid vertex id")
        self.root = root
        self._identity = np.iinfo(np.int64).max

    def init_values(self, ctx: GraphContext) -> State:
        if self.root >= ctx.num_vertices:
            raise ValueError(
                f"root {self.root} out of range for {ctx.num_vertices} vertices"
            )
        parent = np.full(ctx.num_vertices, -1, dtype=np.int64)
        distance = np.full(ctx.num_vertices, -1, dtype=np.int64)
        active = np.zeros(ctx.num_vertices, dtype=bool)
        parent[self.root] = self.root
        distance[self.root] = 0
        active[self.root] = True
        return {
            "vid": np.arange(ctx.num_vertices, dtype=np.int64),
            "parent": parent,
            "distance": distance,
            "active": active,
        }

    def scatter(
        self,
        values: State,
        src_local: np.ndarray,
        dst: np.ndarray,
        weight: Optional[np.ndarray],
        iteration: int,
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        selected = values["active"][src_local]
        if not selected.any():
            return None
        return dst[selected], values["vid"][src_local[selected]]

    def make_accumulator(self, n: int) -> np.ndarray:
        return np.full(n, self._identity, dtype=np.int64)

    def gather(self, accum, dst_local, values, state=None) -> None:
        np.minimum.at(accum, dst_local, values)

    def merge(self, accum: np.ndarray, other: np.ndarray) -> None:
        np.minimum(accum, other, out=accum)

    def combine_updates(self, dst, values):
        from repro.algorithms.combiners import combine_by_min

        return combine_by_min(dst, values)

    def apply(self, values: State, accum: np.ndarray, iteration: int) -> int:
        discovered = (values["parent"] == -1) & (accum != self._identity)
        values["parent"][discovered] = accum[discovered]
        values["distance"][discovered] = iteration + 1
        values["active"][:] = discovered
        return int(np.count_nonzero(discovered))


class WCC(GasAlgorithm):
    """Weakly connected components by min-label propagation.

    Every vertex starts with its own id as label; active vertices
    scatter their label; gather keeps the minimum; apply adopts a
    smaller label and reactivates.  At quiescence, each vertex's label
    is the minimum vertex id of its component.  Run on the symmetrized
    graph (Table 1: WCC requires an undirected graph).
    """

    name = "WCC"
    needs_undirected = True
    update_bytes = 8
    vertex_bytes = 8
    accum_bytes = 4
    max_iterations = None

    def __init__(self):
        self._identity = np.iinfo(np.int64).max

    def init_values(self, ctx: GraphContext) -> State:
        return {
            "label": np.arange(ctx.num_vertices, dtype=np.int64),
            "active": np.ones(ctx.num_vertices, dtype=bool),
        }

    def scatter(self, values, src_local, dst, weight, iteration):
        selected = values["active"][src_local]
        if not selected.any():
            return None
        return dst[selected], values["label"][src_local[selected]]

    def make_accumulator(self, n: int) -> np.ndarray:
        return np.full(n, self._identity, dtype=np.int64)

    def gather(self, accum, dst_local, values, state=None) -> None:
        np.minimum.at(accum, dst_local, values)

    def merge(self, accum: np.ndarray, other: np.ndarray) -> None:
        np.minimum(accum, other, out=accum)

    def combine_updates(self, dst, values):
        from repro.algorithms.combiners import combine_by_min

        return combine_by_min(dst, values)

    def apply(self, values: State, accum: np.ndarray, iteration: int) -> int:
        improved = accum < values["label"]
        values["label"][improved] = accum[improved]
        values["active"][:] = improved
        return int(np.count_nonzero(improved))


class SSSP(GasAlgorithm):
    """Single-source shortest paths (Bellman-Ford style relaxation).

    Runs on an undirected weighted graph.  Active vertices scatter
    ``dist + edge weight``; gather keeps the minimum tentative distance;
    apply relaxes and reactivates improved vertices.  Terminates at
    quiescence; with non-negative weights convergence is guaranteed.
    """

    name = "SSSP"
    needs_undirected = True
    needs_weights = True
    update_bytes = 8  # destination id + float distance (compact)
    vertex_bytes = 8
    accum_bytes = 4
    max_iterations = None

    def __init__(self, root: int = 0):
        if root < 0:
            raise ValueError("root must be a valid vertex id")
        self.root = root

    def init_values(self, ctx: GraphContext) -> State:
        if self.root >= ctx.num_vertices:
            raise ValueError(
                f"root {self.root} out of range for {ctx.num_vertices} vertices"
            )
        distance = np.full(ctx.num_vertices, np.inf, dtype=np.float64)
        active = np.zeros(ctx.num_vertices, dtype=bool)
        distance[self.root] = 0.0
        active[self.root] = True
        return {"distance": distance, "active": active}

    def scatter(self, values, src_local, dst, weight, iteration):
        if weight is None:
            raise ValueError("SSSP requires edge weights")
        selected = values["active"][src_local]
        if not selected.any():
            return None
        return (
            dst[selected],
            values["distance"][src_local[selected]] + weight[selected],
        )

    def make_accumulator(self, n: int) -> np.ndarray:
        return np.full(n, np.inf, dtype=np.float64)

    def gather(self, accum, dst_local, values, state=None) -> None:
        np.minimum.at(accum, dst_local, values)

    def merge(self, accum: np.ndarray, other: np.ndarray) -> None:
        np.minimum(accum, other, out=accum)

    def combine_updates(self, dst, values):
        from repro.algorithms.combiners import combine_by_min

        return combine_by_min(dst, values)

    def apply(self, values: State, accum: np.ndarray, iteration: int) -> int:
        improved = accum < values["distance"]
        values["distance"][improved] = accum[improved]
        values["active"][:] = improved
        return int(np.count_nonzero(improved))

"""PageRank in the Chaos GAS model (Figure 2 of the paper).

Scatter sends ``rank / out_degree`` over every outgoing edge; gather
sums incoming contributions; apply computes
``rank = 0.15 + 0.85 * accum``.  Runs for a fixed number of iterations,
like the paper's evaluation (5 iterations for the capacity experiment).

Vertices with no outgoing edges contribute nothing (their mass leaks, as
in the paper's formulation — the classic non-normalized variant used by
X-Stream and Chaos).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.gas import GasAlgorithm, GraphContext, State


class PageRank(GasAlgorithm):
    """Fixed-iteration PageRank (damping 0.85)."""

    name = "PR"
    needs_out_degrees = True
    update_bytes = 8  # 4-byte destination id + 4-byte float contribution
    vertex_bytes = 8  # rank + degree, compact format
    accum_bytes = 4

    def __init__(self, iterations: int = 5, damping: float = 0.85):
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not 0.0 <= damping < 1.0:
            raise ValueError("damping must be in [0, 1)")
        self.max_iterations = iterations
        self.damping = damping

    def init_values(self, ctx: GraphContext) -> State:
        if ctx.out_degrees is None:
            raise ValueError("PageRank requires out-degrees")
        return {
            "rank": np.full(ctx.num_vertices, 1.0, dtype=np.float64),
            "degree": ctx.out_degrees.astype(np.float64),
        }

    def scatter(
        self,
        values: State,
        src_local: np.ndarray,
        dst: np.ndarray,
        weight: Optional[np.ndarray],
        iteration: int,
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        degree = values["degree"][src_local]
        # Degree is >= 1 for any vertex that has an outgoing edge to
        # scatter over, so the division is safe.
        contribution = values["rank"][src_local] / degree
        return dst, contribution

    def make_accumulator(self, n: int) -> np.ndarray:
        return np.zeros(n, dtype=np.float64)

    def gather(
        self,
        accum: np.ndarray,
        dst_local: np.ndarray,
        values: np.ndarray,
        state=None,
    ) -> None:
        np.add.at(accum, dst_local, values)

    def merge(self, accum: np.ndarray, other: np.ndarray) -> None:
        accum += other

    def combine_updates(self, dst, values):
        from repro.algorithms.combiners import combine_by_sum

        return combine_by_sum(dst, values)

    def apply(self, values: State, accum: np.ndarray, iteration: int) -> int:
        new_rank = (1.0 - self.damping) + self.damping * accum
        changed = int(np.count_nonzero(new_rank != values["rank"]))
        values["rank"][:] = new_rank
        return changed

"""Multi-phase driver support.

MCST and SCC are not single GAS jobs: like their X-Stream counterparts
they are *drivers* that run a sequence of GAS computations, carrying
vertex state between them and (for MCST) rewriting the edge set between
rounds — the paper notes this extension: *"In an extended version of the
model, edges may also be rewritten during the computation"* (Section
6.1, footnote 2).

Each sub-job runs on its own simulated cluster instance; the driver sums
simulated runtimes (including each sub-job's pre-processing pass, which
models the between-round edge rewriting cost) and aggregates I/O
counters, producing a result with the same reporting surface as a
single :class:`~repro.core.metrics.JobResult`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.metrics import BREAKDOWN_CATEGORIES, Breakdown, JobResult


@dataclass
class DriverResult:
    """Aggregate result of a multi-phase (multi-job) computation."""

    algorithm: str
    machines: int
    runtime: float
    rounds: int
    jobs: List[JobResult] = field(default_factory=list)
    values: Optional[dict] = None

    @property
    def iterations(self) -> int:
        return sum(job.iterations for job in self.jobs)

    @property
    def storage_bytes(self) -> int:
        return sum(job.storage_bytes for job in self.jobs)

    @property
    def network_bytes(self) -> int:
        return sum(job.network_bytes for job in self.jobs)

    @property
    def steals_accepted(self) -> int:
        return sum(job.steals_accepted for job in self.jobs)

    @property
    def steals_rejected(self) -> int:
        return sum(job.steals_rejected for job in self.jobs)

    @property
    def preprocessing_seconds(self) -> float:
        return sum(job.preprocessing_seconds for job in self.jobs)

    @property
    def aggregate_bandwidth(self) -> float:
        if self.runtime <= 0:
            return 0.0
        return self.storage_bytes / self.runtime

    @property
    def checkpoints(self) -> int:
        return sum(job.checkpoints for job in self.jobs)

    def total_breakdown(self) -> Breakdown:
        result = Breakdown()
        for job in self.jobs:
            result = result.merged_with(job.total_breakdown())
        return result

    @property
    def breakdowns(self) -> List[Breakdown]:
        merged: List[Breakdown] = []
        for job in self.jobs:
            for index, breakdown in enumerate(job.breakdowns):
                if index >= len(merged):
                    merged.append(Breakdown())
                merged[index] = merged[index].merged_with(breakdown)
        return merged

    def summary(self) -> str:
        return (
            f"{self.algorithm}: m={self.machines} runtime={self.runtime:.3f}s "
            f"rounds={self.rounds} jobs={len(self.jobs)} "
            f"net={self.network_bytes / 1e6:.1f} MB"
        )

    def to_dict(self) -> dict:
        """Machine-readable aggregate, with per-job payloads nested."""
        breakdown = self.total_breakdown()
        return {
            "algorithm": self.algorithm,
            "machines": self.machines,
            "runtime": self.runtime,
            "rounds": self.rounds,
            "iterations": self.iterations,
            "preprocessing_seconds": self.preprocessing_seconds,
            "storage_bytes": self.storage_bytes,
            "network_bytes": self.network_bytes,
            "aggregate_bandwidth": self.aggregate_bandwidth,
            "steals_accepted": self.steals_accepted,
            "steals_rejected": self.steals_rejected,
            "checkpoints": self.checkpoints,
            "breakdown": {
                category: getattr(breakdown, category)
                for category in BREAKDOWN_CATEGORIES
            },
            "jobs": [job.to_dict() for job in self.jobs],
            "value_keys": sorted(self.values) if self.values else [],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The :meth:`to_dict` payload serialized deterministically."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

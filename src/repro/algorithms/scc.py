"""Strongly connected components (forward-backward coloring driver).

The classic out-of-core SCC strategy (used by X-Stream): repeat two
label-propagation passes over the *unassigned* subgraph until every
vertex is assigned.

1. **Forward coloring** (to quiescence, on the original edges): every
   unassigned vertex starts with its own id; colors propagate along
   out-edges taking the maximum.  At fixpoint, ``color(v)`` is the
   largest-id unassigned vertex that can reach ``v``.

2. **Backward confirmation** (to quiescence, on the transposed edges):
   the root of each color class (the vertex whose color equals its id)
   is confirmed; confirmation propagates along *in*-edges but only to
   vertices of the same color.  Confirmed vertices form exactly the SCC
   of the root: mutual reachability within the color class.

Confirmed vertices are assigned their color as SCC id and drop out of
the next round.  Each round assigns at least the SCC of the largest
unassigned id, so the driver terminates.

The transposed edge list is computed once, up front; both orientations
are partitioned independently by the per-job pre-processing passes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.drivers import DriverResult
from repro.core.config import ClusterConfig
from repro.core.gas import GasAlgorithm, GraphContext, State
from repro.core.runtime import ChaosCluster
from repro.graph.edgelist import EdgeList


class _ForwardColor(GasAlgorithm):
    """Max-label propagation over out-edges, restricted to unassigned."""

    name = "SCC/forward"
    update_bytes = 8
    vertex_bytes = 16
    accum_bytes = 8
    max_iterations = None

    def __init__(self, assigned: np.ndarray, color: np.ndarray):
        self._assigned = assigned
        self._color = color

    def init_values(self, ctx: GraphContext) -> State:
        return {
            "assigned": self._assigned.copy(),
            "color": self._color.copy(),
            "active": ~self._assigned,
        }

    def scatter(self, values, src_local, dst, weight, iteration):
        selected = values["active"][src_local] & ~values["assigned"][src_local]
        if not selected.any():
            return None
        return dst[selected], values["color"][src_local[selected]]

    def make_accumulator(self, n: int) -> np.ndarray:
        return np.full(n, -1, dtype=np.int64)

    def gather(self, accum, dst_local, values, state=None) -> None:
        np.maximum.at(accum, dst_local, values)

    def merge(self, accum: np.ndarray, other: np.ndarray) -> None:
        np.maximum(accum, other, out=accum)

    def apply(self, values: State, accum: np.ndarray, iteration: int) -> int:
        improved = ~values["assigned"] & (accum > values["color"])
        values["color"][improved] = accum[improved]
        values["active"][:] = improved
        return int(np.count_nonzero(improved))


class _BackwardConfirm(GasAlgorithm):
    """Confirmation wave along transposed edges within one color class."""

    name = "SCC/backward"
    update_bytes = 8
    vertex_bytes = 16
    accum_bytes = 8
    max_iterations = None

    def __init__(self, assigned: np.ndarray, color: np.ndarray):
        self._assigned = assigned
        self._color = color

    def init_values(self, ctx: GraphContext) -> State:
        vid = np.arange(ctx.num_vertices, dtype=np.int64)
        confirmed = ~self._assigned & (self._color == vid)
        return {
            "assigned": self._assigned.copy(),
            "color": self._color.copy(),
            "confirmed": confirmed,
            "active": confirmed.copy(),
        }

    def scatter(self, values, src_local, dst, weight, iteration):
        selected = values["active"][src_local]
        if not selected.any():
            return None
        return dst[selected], values["color"][src_local[selected]]

    def make_accumulator(self, n: int) -> np.ndarray:
        return np.full(n, -1, dtype=np.int64)

    def gather(self, accum, dst_local, values, state=None) -> None:
        if state is None:
            raise ValueError("SCC confirmation needs the vertex state")
        # Only same-color, unassigned, unconfirmed destinations accept.
        acceptable = (
            (state["color"][dst_local] == values)
            & ~state["assigned"][dst_local]
            & ~state["confirmed"][dst_local]
        )
        np.maximum.at(accum, dst_local[acceptable], values[acceptable])

    def merge(self, accum: np.ndarray, other: np.ndarray) -> None:
        np.maximum(accum, other, out=accum)

    def apply(self, values: State, accum: np.ndarray, iteration: int) -> int:
        newly = ~values["confirmed"] & ~values["assigned"] & (
            accum == values["color"]
        ) & (accum >= 0)
        values["confirmed"][newly] = True
        values["active"][:] = newly
        return int(np.count_nonzero(newly))


def transpose_edges(edges: EdgeList) -> EdgeList:
    """The reverse orientation of every edge."""
    return EdgeList(
        num_vertices=edges.num_vertices,
        src=edges.dst.copy(),
        dst=edges.src.copy(),
        weight=edges.weight.copy() if edges.weighted else None,
    )


def run_scc(
    edges: EdgeList,
    config: Optional[ClusterConfig] = None,
    max_rounds: int = 10_000,
    tracer=None,
    sanitizer=None,
    **config_overrides,
) -> DriverResult:
    """Compute SCCs of a directed graph.

    The result's ``values["scc"]`` maps each vertex to its SCC id (the
    largest vertex id in the component, by construction of the forward
    coloring).
    """
    if config is None:
        config = ClusterConfig(**config_overrides)
    elif config_overrides:
        config = config.with_(**config_overrides)

    num_vertices = edges.num_vertices
    reversed_edges = transpose_edges(edges)
    assigned = np.zeros(num_vertices, dtype=bool)
    scc_id = np.full(num_vertices, -1, dtype=np.int64)
    jobs = []
    rounds = 0

    while not assigned.all():
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("SCC driver failed to converge")
        color = np.arange(num_vertices, dtype=np.int64)
        color[assigned] = -1

        forward = ChaosCluster(config, tracer=tracer, sanitizer=sanitizer).run(
            _ForwardColor(assigned, color), edges
        )
        jobs.append(forward)
        color = forward.values["color"]

        backward = ChaosCluster(config, tracer=tracer, sanitizer=sanitizer).run(
            _BackwardConfirm(assigned, color), reversed_edges
        )
        jobs.append(backward)
        confirmed = backward.values["confirmed"]

        scc_id[confirmed] = color[confirmed]
        assigned |= confirmed

    runtime = sum(job.runtime for job in jobs)
    return DriverResult(
        algorithm="SCC",
        machines=config.machines,
        runtime=runtime,
        rounds=rounds,
        jobs=jobs,
        values={"scc": scc_id},
    )

"""Update combiners: vectorized per-destination pre-aggregation.

Shared by the algorithms that opt into the optional Pregel-style
combining of Section 11.1 (sum-gatherers combine by sum, min-gatherers
by min).  Both run in O(n log n) on the buffered batch and return one
update per distinct destination.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def combine_by_sum(
    dst: np.ndarray, values: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """One summed update per distinct destination."""
    unique_dst, inverse = np.unique(dst, return_inverse=True)
    combined = np.zeros(len(unique_dst), dtype=values.dtype)
    np.add.at(combined, inverse, values)
    return unique_dst, combined


def combine_by_min(
    dst: np.ndarray, values: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """One minimum update per distinct destination."""
    order = np.lexsort((values, dst))
    sorted_dst = dst[order]
    unique_dst, first = np.unique(sorted_dst, return_index=True)
    return unique_dst, values[order[first]]


def combine_by_max(
    dst: np.ndarray, values: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """One maximum update per distinct destination."""
    order = np.lexsort((-values, dst))
    sorted_dst = dst[order]
    unique_dst, first = np.unique(sorted_dst, return_index=True)
    return unique_dst, values[order[first]]

"""Sparse matrix-vector multiplication: y = A·x in one GAS pass.

The graph's (weighted) edges are the non-zeros of A: edge (i, j, w)
contributes ``w * x[i]`` to ``y[j]``.  Unweighted graphs use w = 1
(the adjacency matrix).  One scatter/gather iteration, like X-Stream's
SpMV benchmark (directed input, Table 1).
"""

from __future__ import annotations

import numpy as np

from repro.core.gas import GasAlgorithm, GraphContext, State


class SpMV(GasAlgorithm):
    """One matrix-vector product over the edge list."""

    name = "SpMV"
    update_bytes = 8
    vertex_bytes = 8
    accum_bytes = 4
    max_iterations = 1

    def __init__(self, x: np.ndarray = None, seed: int = 0):
        """``x`` is the input vector; defaults to a deterministic
        pseudo-random vector (seeded) sized at init time."""
        self._x = x
        self._seed = seed

    def init_values(self, ctx: GraphContext) -> State:
        if self._x is not None:
            x = np.asarray(self._x, dtype=np.float64)
            if len(x) != ctx.num_vertices:
                raise ValueError(
                    f"x has length {len(x)}, expected {ctx.num_vertices}"
                )
        else:
            rng = np.random.default_rng(self._seed)
            x = rng.random(ctx.num_vertices)
        return {"x": x, "y": np.zeros(ctx.num_vertices, dtype=np.float64)}

    def scatter(self, values, src_local, dst, weight, iteration):
        contribution = values["x"][src_local]
        if weight is not None:
            contribution = contribution * weight
        return dst, contribution

    def make_accumulator(self, n: int) -> np.ndarray:
        return np.zeros(n, dtype=np.float64)

    def gather(self, accum, dst_local, values, state=None) -> None:
        np.add.at(accum, dst_local, values)

    def merge(self, accum: np.ndarray, other: np.ndarray) -> None:
        accum += other

    def combine_updates(self, dst, values):
        from repro.algorithms.combiners import combine_by_sum

        return combine_by_sum(dst, values)

    def apply(self, values: State, accum: np.ndarray, iteration: int) -> int:
        values["y"][:] = accum
        return int(np.count_nonzero(accum))

"""The ten evaluation algorithms of the paper (Table 1).

Eight are single GAS jobs (:class:`~repro.core.gas.GasAlgorithm`
subclasses run via :func:`repro.core.runtime.run_algorithm`); MCST and
SCC are multi-phase drivers (:func:`run_mcst`, :func:`run_scc`) that
chain GAS jobs, as in X-Stream.

The first five (BFS, WCC, MCST, MIS, SSSP) require an undirected input
(symmetrize with :func:`repro.graph.convert.to_undirected`); the rest
run on directed graphs.
"""

from repro.algorithms.bp import BeliefPropagation
from repro.algorithms.conductance import Conductance
from repro.algorithms.drivers import DriverResult
from repro.algorithms.kcore import KCore, run_kcore_decomposition
from repro.algorithms.mcst import run_mcst
from repro.algorithms.mis import MIS
from repro.algorithms.pagerank import PageRank
from repro.algorithms.scc import run_scc, transpose_edges
from repro.algorithms.spmv import SpMV
from repro.algorithms.traversal import BFS, SSSP, WCC

__all__ = [
    "BFS",
    "BeliefPropagation",
    "Conductance",
    "DriverResult",
    "KCore",
    "run_kcore_decomposition",
    "MIS",
    "PageRank",
    "SSSP",
    "SpMV",
    "WCC",
    "run_mcst",
    "run_scc",
    "transpose_edges",
]
